//! The Table 5 generator: measures every micro and macro row on both
//! systems, the hot-path before/after rows (compiled vs interpreted
//! policy, dcache-hit vs cold resolution), and renders the paper-style
//! table plus the machine-readable `BENCH_table5.json` document.

use crate::json::{self, Value};
use crate::micro::all_micro_ops;
use crate::workloads;
use crate::{both, fixture, overhead_pct, quick_time_ns};
use apparmor_lsm::{glob_match, AppArmorLsm, CompiledGlob};
use sim_kernel::cred::{Credentials, Gid, Uid};
use sim_kernel::lsm::{FileOpenCtx, SecurityModule};
use sim_kernel::vfs::{Access, Ino, Mode};
use std::hint::black_box;
use userland::SystemMode;

/// One measured Table 5 row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row name.
    pub name: String,
    /// Reported value for the legacy system (ns/op): the median round.
    pub linux_ns: f64,
    /// Reported value for Protego (ns/op): the median round.
    pub protego_ns: f64,
    /// Measured overhead percent (from the medians).
    pub overhead_pct: f64,
    /// The paper's overhead percent for the same row, when comparable.
    pub paper_overhead_pct: Option<f64>,
    /// Every measured legacy round (ns/op), in run order. Empty for rows
    /// measured without the paired median-of-K protocol (macro rows).
    pub linux_runs_ns: Vec<f64>,
    /// Every measured Protego round (ns/op), in run order.
    pub protego_runs_ns: Vec<f64>,
}

impl Row {
    fn summary(name: String, linux_ns: f64, protego_ns: f64, paper: Option<f64>) -> Row {
        Row {
            name,
            linux_ns,
            protego_ns,
            overhead_pct: overhead_pct(linux_ns, protego_ns),
            paper_overhead_pct: paper,
            linux_runs_ns: Vec::new(),
            protego_runs_ns: Vec::new(),
        }
    }
}

/// Paired interleaved rounds per mode for each micro row — the K of
/// median-of-K. Odd, so the reported median is an actually-measured
/// round rather than an average of two.
pub const MICRO_RUNS: usize = 7;

/// Median of a sample (empty -> 0).
fn median_of(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    match sorted.len() {
        0 => 0.0,
        n if n % 2 == 1 => sorted[n / 2],
        n => (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0,
    }
}

/// Measures all micro rows with the given iteration budget, reporting
/// per-mode medians over [`MICRO_RUNS`] paired interleaved rounds.
pub fn measure_micro(warmup: u32, iters: u32) -> Vec<Row> {
    measure_micro_runs(warmup, iters, MICRO_RUNS)
}

/// [`measure_micro`] with an explicit round count (the K of median-of-K).
///
/// Rounds interleave the two systems pairwise (L, P, L, P, ...), so host
/// drift — frequency scaling, competing load, allocator state — lands on
/// both modes alike instead of biasing whichever mode ran later; the
/// median then discards outlier rounds entirely, where a mean would
/// smear them into the result and a best-of pick would understate cost.
pub fn measure_micro_runs(warmup: u32, iters: u32, runs: usize) -> Vec<Row> {
    let (mut legacy, mut protego) = both();
    let mut rows = Vec::new();
    for op in all_micro_ops() {
        let pl = (op.prepare)(&mut legacy);
        let pp = (op.prepare)(&mut protego);
        // One unmeasured round per mode first, so one-time costs (name
        // interning, dcache fill, pool growth) never land inside a
        // measured window.
        quick_time_ns(warmup, iters, || (op.run)(&mut legacy, &pl));
        quick_time_ns(warmup, iters, || (op.run)(&mut protego, &pp));
        let mut l_runs = Vec::with_capacity(runs);
        let mut p_runs = Vec::with_capacity(runs);
        for _ in 0..runs {
            l_runs.push(quick_time_ns(warmup, iters, || (op.run)(&mut legacy, &pl)));
            p_runs.push(quick_time_ns(warmup, iters, || (op.run)(&mut protego, &pp)));
        }
        let linux_ns = median_of(&l_runs);
        let protego_ns = median_of(&p_runs);
        let paper = match (op.paper_linux_us, op.paper_protego_us) {
            (Some(a), Some(b)) => Some(overhead_pct(a, b)),
            _ => None,
        };
        rows.push(Row {
            name: op.name.to_string(),
            linux_ns,
            protego_ns,
            overhead_pct: overhead_pct(linux_ns, protego_ns),
            paper_overhead_pct: paper,
            linux_runs_ns: l_runs,
            protego_runs_ns: p_runs,
        });
    }
    rows
}

/// Measures the macro rows (Postal, kernel compile, ApacheBench sweeps).
pub fn measure_macro(postal_msgs: u64, compile_units: u64, ab_requests: u64) -> Vec<Row> {
    let mut rows = Vec::new();

    // Postal.
    {
        let (mut l, mut p) = both();
        let (ml, fdl) = workloads::start_mta(&mut l);
        let (mp, fdp) = workloads::start_mta(&mut p);
        // Warmup batch, then best-of-two measured rounds per system.
        let _ = workloads::postal(&mut l, ml, fdl, postal_msgs / 4);
        let _ = workloads::postal(&mut p, mp, fdp, postal_msgs / 4);
        let tl1 = workloads::postal(&mut l, ml, fdl, postal_msgs);
        let tp1 = workloads::postal(&mut p, mp, fdp, postal_msgs);
        let tl2 = workloads::postal(&mut l, ml, fdl, postal_msgs);
        let tp2 = workloads::postal(&mut p, mp, fdp, postal_msgs);
        let tl = if tl1.elapsed_ns < tl2.elapsed_ns {
            tl1
        } else {
            tl2
        };
        let tp = if tp1.elapsed_ns < tp2.elapsed_ns {
            tp1
        } else {
            tp2
        };
        // paper: 258.64 -> 258.75 msgs/min
        rows.push(Row::summary(
            "Postal (msg)".into(),
            tl.ns_per_op(),
            tp.ns_per_op(),
            Some(-0.04),
        ));
    }

    // Kernel compile.
    {
        let (mut l, mut p) = both();
        let _ = workloads::compile(&mut l, compile_units / 4);
        let _ = workloads::compile(&mut p, compile_units / 4);
        let tl1 = workloads::compile(&mut l, compile_units);
        let tp1 = workloads::compile(&mut p, compile_units);
        let tl2 = workloads::compile(&mut l, compile_units);
        let tp2 = workloads::compile(&mut p, compile_units);
        let tl = if tl1.elapsed_ns < tl2.elapsed_ns {
            tl1
        } else {
            tl2
        };
        let tp = if tp1.elapsed_ns < tp2.elapsed_ns {
            tp1
        } else {
            tp2
        };
        rows.push(Row::summary(
            "Kernel compile (unit)".into(),
            tl.ns_per_op(),
            tp.ns_per_op(),
            Some(1.44),
        ));
    }

    // ApacheBench at the paper's four concurrency levels.
    for (conc, paper) in [(25u64, 3.57), (50, 3.85), (100, 4.00), (200, 2.65)] {
        let (mut l, mut p) = both();
        let (wl, fdl) = workloads::start_httpd(&mut l);
        let (wp, fdp) = workloads::start_httpd(&mut p);
        // Warmup batch, then best-of-two measured rounds per system.
        let _ = workloads::apache_bench(&mut l, wl, fdl, ab_requests / 4, conc);
        let _ = workloads::apache_bench(&mut p, wp, fdp, ab_requests / 4, conc);
        let tl1 = workloads::apache_bench(&mut l, wl, fdl, ab_requests, conc);
        let tp1 = workloads::apache_bench(&mut p, wp, fdp, ab_requests, conc);
        let tl2 = workloads::apache_bench(&mut l, wl, fdl, ab_requests, conc);
        let tp2 = workloads::apache_bench(&mut p, wp, fdp, ab_requests, conc);
        let tl = if tl1.elapsed_ns < tl2.elapsed_ns {
            tl1
        } else {
            tl2
        };
        let tp = if tp1.elapsed_ns < tp2.elapsed_ns {
            tp1
        } else {
            tp2
        };
        rows.push(Row::summary(
            format!("ApacheBench c={}", conc),
            tl.ns_per_op(),
            tp.ns_per_op(),
            Some(paper),
        ));
    }
    rows
}

/// Renders rows in the paper's format.
pub fn render(rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<24} {:>12} {:>12} {:>8} {:>10}\n",
        "Test", "Linux(ns)", "Protego(ns)", "%OH", "paper %OH"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<24} {:>12.0} {:>12.0} {:>8.2} {:>10}\n",
            r.name,
            r.linux_ns,
            r.protego_ns,
            r.overhead_pct,
            r.paper_overhead_pct
                .map(|p| format!("{:.2}", p))
                .unwrap_or_else(|| "-".into()),
        ));
    }
    s
}

/// The worst-case measured overhead across rows (Table 1's headline).
pub fn max_overhead(rows: &[Row]) -> f64 {
    rows.iter().map(|r| r.overhead_pct).fold(f64::MIN, f64::max)
}

/// One hot-path comparison row: the same operation with the fast path
/// disabled (the pre-caching interpreted/cold code, kept as the oracle)
/// and enabled (compiled globs, decision LRUs, dcache hits).
#[derive(Clone, Debug)]
pub struct HotpathRow {
    /// Row name (`glob_match`, `path_resolution`, `file_open`).
    pub name: &'static str,
    /// ns/op with the fast path disabled.
    pub before_ns: f64,
    /// ns/op with the fast path enabled.
    pub after_ns: f64,
    /// `before_ns / after_ns`.
    pub speedup: f64,
}

fn hotpath_row(name: &'static str, before_ns: f64, after_ns: f64) -> HotpathRow {
    HotpathRow {
        name,
        before_ns,
        after_ns,
        speedup: if after_ns > 0.0 {
            before_ns / after_ns
        } else {
            0.0
        },
    }
}

fn best_of_two<F: FnMut()>(warmup: u32, iters: u32, mut op: F) -> f64 {
    let a = quick_time_ns(warmup, iters, &mut op);
    let b = quick_time_ns(warmup, iters, &mut op);
    a.min(b)
}

/// Measures the three hot-path rows with best-of-two rounds per variant.
/// (The micro rows use the stronger paired interleaved median-of-K
/// protocol — see `measure_micro_runs`; these speedup rows compare
/// implementations at >=2x, where best-of-two is noise-proof enough.)
pub fn measure_hotpath(warmup: u32, iters: u32) -> Vec<HotpathRow> {
    let mut rows = Vec::new();

    // Glob matching: profile-shaped patterns evaluated by the recursive
    // interpreter vs the compiled engine with its literal/prefix fast
    // paths and reusable DP scratch.
    {
        const PAIRS: [(&str, &str); 4] = [
            ("/dev/**", "/dev/ttyS0"),
            ("/{bin,sbin}/mount", "/sbin/mount"),
            ("/etc/mtab", "/etc/mtab"),
            ("/usr/{lib,lib64,share}/**", "/usr/lib64/protego/policy.bin"),
        ];
        let compiled: Vec<CompiledGlob> = PAIRS.iter().map(|(p, _)| CompiledGlob::new(p)).collect();
        let before = best_of_two(warmup, iters, || {
            for (pattern, path) in PAIRS {
                black_box(glob_match(pattern, path));
            }
        });
        let after = best_of_two(warmup, iters, || {
            for (g, (_, path)) in compiled.iter().zip(PAIRS) {
                black_box(g.matches(path));
            }
        });
        rows.push(hotpath_row("glob_match", before, after));
    }

    // Path resolution on the VFS: a deep component walk vs a
    // generation-valid dcache hit. The cwd argument is irrelevant for an
    // absolute path.
    {
        let f = fixture(SystemMode::Protego);
        const DEEP: &str = "/srv/bench/a/b/c/d/e/f/g/h/i/j/leaf.conf";
        f.sys
            .kernel
            .vfs
            .install_file(DEEP, b"x", Mode(0o644), Uid::ROOT, Gid::ROOT)
            .expect("bench file installs");
        let vfs = &f.sys.kernel.vfs;
        vfs.set_dcache_enabled(false);
        let before = best_of_two(warmup, iters, || {
            black_box(vfs.resolve(Ino(0), DEEP).expect("resolves"));
        });
        vfs.set_dcache_enabled(true);
        let after = best_of_two(warmup, iters, || {
            black_box(vfs.resolve(Ino(0), DEEP).expect("resolves"));
        });
        rows.push(hotpath_row("path_resolution", before, after));
    }

    // The full AppArmor file_open hook round-trip: interpreted profile
    // lookup + rule walk vs binary→profile cache + decision LRU.
    {
        let a = AppArmorLsm::with_ubuntu_defaults();
        let root_cred = Credentials::root();
        let ctx = FileOpenCtx {
            cred: &root_cred,
            path: "/etc/fstab",
            binary: "/bin/mount",
            access: Access::READ,
            dac_allows: true,
            file_owner: Uid::ROOT,
            last_auth: None,
            last_auth_scope: None,
            now: 0,
        };
        a.set_caching(false);
        let before = best_of_two(warmup, iters, || {
            black_box(a.file_open(&ctx));
        });
        a.set_caching(true);
        let after = best_of_two(warmup, iters, || {
            black_box(a.file_open(&ctx));
        });
        rows.push(hotpath_row("file_open", before, after));
    }

    rows
}

/// The seccomp hot-path evidence row: the same `stat` dispatch on the
/// same booted image, measured with the registered
/// [`SeccompInterceptor`](sim_kernel::seccomp::SeccompInterceptor) in
/// mode `off` (the no-seccomp baseline: one mode load, then pass-through)
/// versus mode `enforce` under a profile that allows the call — so the
/// measured delta is exactly the per-dispatch cost of the profile
/// selection memo plus the packed allow-mask test.
#[derive(Clone, Debug)]
pub struct DispatchSeccompRow {
    /// Dispatch with seccomp off: the median round.
    pub base_ns: f64,
    /// Dispatch under an enforcing profile: the median round.
    pub seccomp_ns: f64,
    /// Overhead percent (from the medians).
    pub overhead_pct: f64,
    /// Every seccomp-off round (ns/op), in run order.
    pub base_runs_ns: Vec<f64>,
    /// Every enforced round (ns/op), in run order.
    pub seccomp_runs_ns: Vec<f64>,
}

/// Extra iteration factor for [`measure_dispatch_seccomp`] over the
/// shared micro sizes: the budgeted signal is ~1% of a single-dispatch
/// row, so this row needs far more samples per round than the 5–10%
/// micro rows to resolve it; the op is one syscall, so the rounds stay
/// cheap even at 40×.
const SECCOMP_ITER_SCALE: u32 = 40;

/// Measures the seccomp dispatch row with the same paired interleaved
/// median-of-[`MICRO_RUNS`] protocol as the micro rows — but A/B on a
/// *single* Protego image, flipping the seccomp mode between `off` and
/// `enforce` each round. Using one image (same heap, same caches, same
/// interceptor chain) removes fixture-layout bias that would swamp the
/// sub-1% signal; the mode flip is one atomic store. The acceptance
/// budget ([`json::DISPATCH_SECCOMP_BUDGET_PCT`]) is <1% on full runs.
pub fn measure_dispatch_seccomp(warmup: u32, iters: u32) -> DispatchSeccompRow {
    use sim_kernel::seccomp::{ProfileSpec, SeccompMode};
    use sim_kernel::syscall::Syscall;

    let warmup = warmup.saturating_mul(SECCOMP_ITER_SCALE);
    let iters = iters.saturating_mul(SECCOMP_ITER_SCALE);
    let mut f = fixture(SystemMode::Protego);
    let binary = f
        .sys
        .kernel
        .task_identity(f.user)
        .binary
        .as_str()
        .to_string();
    f.sys
        .kernel
        .seccomp
        .load_profiles(&[ProfileSpec::allowing(&binary, &["stat"])])
        .expect("bench profile compiles");
    f.sys.attach_seccomp();

    let stat = || Syscall::Stat {
        path: "/etc/motd".into(),
    };
    let mut run_round = |mode: SeccompMode| {
        let sys = &mut f.sys;
        let user = f.user;
        sys.kernel.seccomp.set_mode(mode);
        quick_time_ns(warmup, iters, || {
            let _ = sys.kernel.dispatch(user, stat());
        })
    };
    // One unmeasured round per mode (interning, dcache, selection-memo
    // fill), then the paired interleaved measured rounds.
    run_round(SeccompMode::Off);
    run_round(SeccompMode::Enforce);
    let mut base_runs = Vec::with_capacity(MICRO_RUNS);
    let mut seccomp_runs = Vec::with_capacity(MICRO_RUNS);
    for _ in 0..MICRO_RUNS {
        base_runs.push(run_round(SeccompMode::Off));
        seccomp_runs.push(run_round(SeccompMode::Enforce));
    }
    let base_ns = median_of(&base_runs);
    let seccomp_ns = median_of(&seccomp_runs);
    DispatchSeccompRow {
        base_ns,
        seccomp_ns,
        overhead_pct: overhead_pct(base_ns, seccomp_ns),
        base_runs_ns: base_runs,
        seccomp_runs_ns: seccomp_runs,
    }
}

/// One named cache's counters as parsed from a `/proc/<lsm>/metrics`
/// view (`cache_<name> hits=.. misses=.. invalidations=..`).
#[derive(Clone, Debug, Default)]
pub struct CacheCounters {
    /// Cache name (`dcache`, `apparmor_binary_lookup`, ...).
    pub name: String,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Wholesale flushes.
    pub invalidations: u64,
}

fn merge_cache_lines(into: &mut Vec<CacheCounters>, metrics_text: &str) {
    for line in metrics_text.lines().filter(|l| l.starts_with("cache_")) {
        let mut fields = line.split_whitespace();
        let name = fields
            .next()
            .unwrap_or_default()
            .trim_start_matches("cache_")
            .to_string();
        let mut row = CacheCounters {
            name,
            ..CacheCounters::default()
        };
        for field in fields {
            if let Some((key, value)) = field.split_once('=') {
                let value: u64 = value.parse().unwrap_or(0);
                match key {
                    "hits" => row.hits = value,
                    "misses" => row.misses = value,
                    "invalidations" => row.invalidations = value,
                    _ => {}
                }
            }
        }
        if let Some(existing) = into.iter_mut().find(|c| c.name == row.name) {
            existing.hits += row.hits;
            existing.misses += row.misses;
            existing.invalidations += row.invalidations;
        } else {
            into.push(row);
        }
    }
}

/// Runs a short cache-exercising workload on both systems and collects
/// the counters their `/proc/<lsm>/metrics` views report (summed across
/// modes for the caches both share, like the dcache).
pub fn collect_cache_metrics() -> Vec<CacheCounters> {
    let mut merged = Vec::new();

    // Legacy: AppArmor confines tcpdump, so repeated opens by that binary
    // exercise the binary→profile cache, the decision LRU and the dcache.
    {
        let f = fixture(SystemMode::Legacy);
        let k = &f.sys.kernel;
        k.write_file(f.root, "/etc/hosts", b"127.0.0.1 localhost\n", Mode(0o644))
            .expect("hosts file");
        let shell = k.task_mut(f.root).expect("root task").binary.clone();
        k.task_mut(f.root).expect("root task").binary = "/usr/sbin/tcpdump".to_string();
        for _ in 0..8 {
            let _ = k.read_to_string(f.root, "/etc/hosts");
        }
        // The confined binary may not read /proc; restore before sampling.
        k.task_mut(f.root).expect("root task").binary = shell;
        let text = k
            .read_to_string(f.root, "/proc/apparmor/metrics")
            .expect("apparmor metrics readable");
        merge_cache_lines(&mut merged, &text);
    }

    // Protego: every file_open consults the keyfile-rule cache, so plain
    // repeated reads exercise it together with the dcache.
    {
        let f = fixture(SystemMode::Protego);
        let k = &f.sys.kernel;
        k.write_file(f.root, "/etc/hosts", b"127.0.0.1 localhost\n", Mode(0o644))
            .expect("hosts file");
        for _ in 0..8 {
            let _ = k.read_to_string(f.user, "/etc/hosts");
        }
        let text = k
            .read_to_string(f.root, "/proc/protego/metrics")
            .expect("protego metrics readable");
        merge_cache_lines(&mut merged, &text);
    }

    merged
}

fn row_to_value(r: &Row) -> Value {
    let mut fields = vec![
        ("name".into(), Value::Str(r.name.clone())),
        ("linux_ns".into(), Value::Num(r.linux_ns)),
        ("protego_ns".into(), Value::Num(r.protego_ns)),
        ("overhead_pct".into(), Value::Num(r.overhead_pct)),
        (
            "paper_overhead_pct".into(),
            r.paper_overhead_pct.map(Value::Num).unwrap_or(Value::Null),
        ),
    ];
    if !r.linux_runs_ns.is_empty() {
        let arr = |xs: &[f64]| Value::Arr(xs.iter().map(|&n| Value::Num(n)).collect());
        fields.push(("linux_runs_ns".into(), arr(&r.linux_runs_ns)));
        fields.push(("protego_runs_ns".into(), arr(&r.protego_runs_ns)));
    }
    Value::Obj(fields)
}

/// Builds the machine-readable `BENCH_table5.json` document: micro and
/// macro Table 5 rows, the hot-path before/after rows, and the cache
/// counters observed through the `/proc/<lsm>/metrics` views.
pub fn table5_json(
    quick: bool,
    warmup: u32,
    iters: u32,
    postal_msgs: u64,
    compile_units: u64,
    ab_requests: u64,
) -> String {
    let micro = measure_micro(warmup, iters);
    let macro_rows = measure_macro(postal_msgs, compile_units, ab_requests);
    let hotpath = measure_hotpath(warmup, iters);
    let seccomp = measure_dispatch_seccomp(warmup, iters);
    let caches = collect_cache_metrics();
    let runs_arr = |xs: &[f64]| Value::Arr(xs.iter().map(|&n| Value::Num(n)).collect());

    let doc = Value::Obj(vec![
        ("schema".into(), Value::Str(json::TABLE5_SCHEMA_V2.into())),
        ("quick".into(), Value::Bool(quick)),
        ("runs_per_mode".into(), Value::Num(MICRO_RUNS as f64)),
        (
            "micro".into(),
            Value::Arr(micro.iter().map(row_to_value).collect()),
        ),
        (
            "macro".into(),
            Value::Arr(macro_rows.iter().map(row_to_value).collect()),
        ),
        (
            "hotpath".into(),
            Value::Arr(
                hotpath
                    .iter()
                    .map(|r| {
                        Value::Obj(vec![
                            ("name".into(), Value::Str(r.name.into())),
                            ("before_ns".into(), Value::Num(r.before_ns)),
                            ("after_ns".into(), Value::Num(r.after_ns)),
                            ("speedup".into(), Value::Num(r.speedup)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "dispatch_seccomp".into(),
            Value::Obj(vec![
                ("base_ns".into(), Value::Num(seccomp.base_ns)),
                ("seccomp_ns".into(), Value::Num(seccomp.seccomp_ns)),
                ("overhead_pct".into(), Value::Num(seccomp.overhead_pct)),
                ("base_runs_ns".into(), runs_arr(&seccomp.base_runs_ns)),
                ("seccomp_runs_ns".into(), runs_arr(&seccomp.seccomp_runs_ns)),
            ]),
        ),
        (
            "cache_metrics".into(),
            Value::Obj(
                caches
                    .iter()
                    .map(|c| {
                        (
                            c.name.clone(),
                            Value::Obj(vec![
                                ("hits".into(), Value::Num(c.hits as f64)),
                                ("misses".into(), Value::Num(c.misses as f64)),
                                ("invalidations".into(), Value::Num(c.invalidations as f64)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ]);
    doc.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_micro_measurement_completes() {
        let rows = measure_micro(2, 5);
        assert!(rows.len() >= 20);
        for r in &rows {
            assert!(r.linux_ns > 0.0, "{}", r.name);
            assert!(r.protego_ns > 0.0, "{}", r.name);
        }
        let text = render(&rows);
        assert!(text.contains("mount/umnt"));
    }

    #[test]
    fn quick_macro_measurement_completes() {
        let rows = measure_macro(5, 3, 10);
        assert_eq!(rows.len(), 6);
        assert!(render(&rows).contains("ApacheBench c=200"));
    }

    #[test]
    fn hotpath_rows_measure_all_three_paths() {
        let rows = measure_hotpath(5, 50);
        let names: Vec<_> = rows.iter().map(|r| r.name).collect();
        assert_eq!(names, ["glob_match", "path_resolution", "file_open"]);
        for r in &rows {
            assert!(r.before_ns > 0.0 && r.after_ns > 0.0, "{:?}", r);
            assert!(r.speedup > 0.0, "{:?}", r);
        }
    }

    #[test]
    fn cache_metrics_report_hits_on_every_layer() {
        let caches = collect_cache_metrics();
        let hits = |name: &str| {
            caches
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.hits)
                .unwrap_or(0)
        };
        assert!(hits("dcache") > 0, "dcache: {:?}", caches);
        assert!(hits("apparmor_binary_lookup") > 0, "{:?}", caches);
        assert!(hits("apparmor_decision_lru") > 0, "{:?}", caches);
        assert!(hits("protego_keyfile_lookup") > 0, "{:?}", caches);
    }

    #[test]
    fn dispatch_seccomp_row_measures_both_variants() {
        let row = measure_dispatch_seccomp(2, 20);
        assert!(row.base_ns > 0.0 && row.seccomp_ns > 0.0, "{:?}", row);
        assert_eq!(row.base_runs_ns.len(), MICRO_RUNS);
        assert_eq!(row.seccomp_runs_ns.len(), MICRO_RUNS);
        assert!(row.overhead_pct.is_finite());
    }

    #[test]
    fn json_document_is_well_formed() {
        let text = table5_json(true, 2, 5, 5, 3, 10);
        let doc = json::parse(&text).expect("emitted JSON parses");
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some(json::TABLE5_SCHEMA_V2)
        );
        assert_eq!(
            doc.get("runs_per_mode").and_then(Value::as_f64),
            Some(MICRO_RUNS as f64)
        );
        let micro = doc.get("micro").unwrap().as_arr().unwrap();
        let runs = micro[0].get("linux_runs_ns").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), MICRO_RUNS);
        assert!(!doc.get("micro").unwrap().as_arr().unwrap().is_empty());
        assert!(!doc.get("macro").unwrap().as_arr().unwrap().is_empty());
        assert_eq!(doc.get("hotpath").unwrap().as_arr().unwrap().len(), 3);
        let dcache = doc.get("cache_metrics").unwrap().get("dcache").unwrap();
        assert!(dcache.get("hits").unwrap().as_f64().unwrap() > 0.0);
        let seccomp = doc.get("dispatch_seccomp").unwrap();
        assert_eq!(
            seccomp.get("base_runs_ns").unwrap().as_arr().unwrap().len(),
            MICRO_RUNS
        );
        assert!(seccomp.get("seccomp_ns").unwrap().as_f64().unwrap() > 0.0);
    }
}
