//! The auto-seccomp derivation pipeline (`tables seccomp-derive`).
//!
//! Runs the full functional + service batteries and the web/mail/compile
//! workloads on both images under a
//! [`ProfileRecorder`], attributing
//! every dispatched call to the calling task's binary, and unions the
//! observed reach sets into per-binary allowlist
//! [`ProfileSpec`]s — the approach of
//! Canella et al.'s trace-based seccomp filter generation, applied to the
//! simulated 46-variant ABI.
//!
//! The derived profiles are exchanged as the committed
//! `SECCOMP_PROFILES.json` (schema [`json::SECCOMP_SCHEMA`]) and verified
//! by [`enforcement_check`]: the same batteries re-run with the profiles
//! loaded and the kernel in enforce mode must reproduce the baseline
//! outcomes with zero recorded violations.
//!
//! Every workload here uses *fixed* operation counts — derivation is a
//! coverage question, not a timing one — so a re-derivation reproduces the
//! committed JSON byte-for-byte and `ci.sh` can use plain text equality as
//! its staleness check.

use crate::json::{self, Value};
use crate::workloads;
use crate::{fixture, Fixture};
use sim_kernel::seccomp::{
    render_profile_line, ProfileRecorder, ProfileSpec, Seccomp, SeccompMode,
};
use sim_kernel::syscall::Syscall;
use userland::suite::{run_functional_suite, run_service_suite, StepOutcome};
use userland::SystemMode;

/// SMTP round trips in the profiled mail workload.
pub const POSTAL_MESSAGES: u64 = 16;
/// HTTP round trips in the profiled web workload.
pub const AB_REQUESTS: u64 = 16;
/// Concurrent connections per ApacheBench batch.
pub const AB_CONCURRENCY: u64 = 4;
/// Translation units in the profiled compile workload.
pub const COMPILE_UNITS: u64 = 4;

/// The web/mail/compile slice of the derivation run (fixed counts).
fn run_profiled_workloads(f: &mut Fixture) {
    let (mta, mfd) = workloads::start_mta(f);
    let _ = workloads::postal(f, mta, mfd, POSTAL_MESSAGES);
    let (web, wfd) = workloads::start_httpd(f);
    let _ = workloads::apache_bench(f, web, wfd, AB_REQUESTS, AB_CONCURRENCY);
    let _ = workloads::compile(f, COMPILE_UNITS);
}

/// Runs the full derivation matrix — functional battery, service battery,
/// and the web/mail/compile workloads, on both images — and returns the
/// per-binary allowlists, sorted by binary path. The workloads get a
/// fresh boot per image: the service battery already binds the
/// well-known mail/web ports, so the two slices cannot share one.
pub fn derive_profiles() -> Vec<ProfileSpec> {
    let recorder = ProfileRecorder::new();
    for mode in [SystemMode::Legacy, SystemMode::Protego] {
        let mut f = fixture(mode);
        f.sys
            .kernel
            .register_interceptor(Box::new(recorder.clone()));
        let _ = run_functional_suite(&mut f.sys);
        let _ = run_service_suite(&mut f.sys);
        let mut w = fixture(mode);
        w.sys
            .kernel
            .register_interceptor(Box::new(recorder.clone()));
        run_profiled_workloads(&mut w);
    }
    recorder.specs()
}

/// Percent of the ABI's [`Syscall::COUNT`] variants a profile reaches.
pub fn reachable_pct(spec: &ProfileSpec) -> f64 {
    spec.allow.len() as f64 / Syscall::COUNT as f64 * 100.0
}

/// Mean reachable percentage across profiles (empty -> 0).
pub fn average_pct(specs: &[ProfileSpec]) -> f64 {
    if specs.is_empty() {
        return 0.0;
    }
    specs.iter().map(reachable_pct).sum::<f64>() / specs.len() as f64
}

/// Renders the derived profiles as a `seccomp_profiles/v1` document
/// (hand-rolled JSON, one `binaries` entry per profile in ABI-name order,
/// plus the aggregate attack-surface number the acceptance gate checks).
pub fn profiles_json(specs: &[ProfileSpec]) -> String {
    let binaries = specs
        .iter()
        .map(|s| {
            Value::Obj(vec![
                ("binary".into(), Value::Str(s.binary.clone())),
                ("default".into(), Value::Str(s.deny_action.render())),
                (
                    "syscalls".into(),
                    Value::Arr(s.allow.iter().map(|n| Value::Str(n.clone())).collect()),
                ),
                ("count".into(), Value::Num(s.allow.len() as f64)),
                ("pct".into(), Value::Num(reachable_pct(s))),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("schema".into(), Value::Str(json::SECCOMP_SCHEMA.into())),
        ("abi_count".into(), Value::Num(Syscall::COUNT as f64)),
        ("binaries".into(), Value::Arr(binaries)),
        ("average_pct".into(), Value::Num(average_pct(specs))),
    ])
    .render()
}

/// Parses a `seccomp_profiles/v1` document back into loadable specs, via
/// the kernel's own profile-line grammar so both exchange forms agree on
/// what a valid profile is.
pub fn parse_profiles(text: &str) -> Result<Vec<ProfileSpec>, String> {
    json::validate_seccomp_profiles(text)?;
    let doc = json::parse(text)?;
    let mut lines = String::new();
    for b in doc
        .get("binaries")
        .and_then(Value::as_arr)
        .unwrap_or_default()
    {
        let binary = b.get("binary").and_then(Value::as_str).unwrap_or_default();
        let default = b.get("default").and_then(Value::as_str).unwrap_or_default();
        let allow: Vec<&str> = b
            .get("syscalls")
            .and_then(Value::as_arr)
            .unwrap_or_default()
            .iter()
            .filter_map(Value::as_str)
            .collect();
        lines.push_str(&format!(
            "profile {} default={} allow={}\n",
            binary,
            default,
            allow.join(",")
        ));
    }
    Seccomp::parse_profiles_text(&lines)
}

/// Renders the KASR-style attack-surface report: per binary, how much of
/// the 46-variant ABI stays reachable under its derived allowlist (an
/// unconfined binary reaches 100%), plus the average the acceptance
/// criterion bounds below 50%.
pub fn render_report(specs: &[ProfileSpec]) -> String {
    let mut s = String::new();
    s.push_str("== Attack-surface reduction (trace-derived seccomp allowlists) ==\n");
    s.push_str(&format!(
        "  ABI surface: {} typed syscall variants; an unconfined binary reaches 100%\n\n",
        Syscall::COUNT
    ));
    s.push_str(&format!(
        "  {:<36} {:>10} {:>12}\n",
        "Binary",
        format!("allowed/{}", Syscall::COUNT),
        "reachable %"
    ));
    for spec in specs {
        s.push_str(&format!(
            "  {:<36} {:>10} {:>12.1}\n",
            spec.binary,
            spec.allow.len(),
            reachable_pct(spec)
        ));
    }
    s.push_str(&format!(
        "\n  average reachable: {:.1}% of the ABI across {} profiled binaries (target <50%)\n",
        average_pct(specs),
        specs.len()
    ));
    s
}

/// What [`enforcement_check`] verified.
#[derive(Clone, Copy, Debug)]
pub struct EnforceSummary {
    /// Images the batteries ran on (1 in smoke mode, 2 in full).
    pub modes: usize,
    /// Battery steps compared against the unconfined baseline.
    pub steps: usize,
}

fn first_outcome_divergence(base: &[StepOutcome], enforced: &[StepOutcome]) -> String {
    for (i, (b, e)) in base.iter().zip(enforced.iter()).enumerate() {
        if b != e {
            return format!(
                "step {} ({}): baseline {:?}, enforced {:?}",
                i, b.name, b, e
            );
        }
    }
    format!(
        "step count changed: baseline {}, enforced {}",
        base.len(),
        enforced.len()
    )
}

/// Re-runs the derivation batteries with `specs` loaded and the kernel in
/// enforce mode, and fails if any step outcome diverges from an
/// unconfined baseline boot or if enforcement records a single violation
/// (zero violations proves the allowlists cover everything the workloads
/// dispatch, so enforcement cannot have perturbed them).
///
/// Smoke mode covers the functional battery on the Protego image only;
/// full mode covers both images and every profiled workload.
pub fn enforcement_check(specs: &[ProfileSpec], smoke: bool) -> Result<EnforceSummary, String> {
    let modes: &[SystemMode] = if smoke {
        &[SystemMode::Protego]
    } else {
        &[SystemMode::Legacy, SystemMode::Protego]
    };
    let enforced_fixture = |mode: SystemMode| -> Result<Fixture, String> {
        let mut f = fixture(mode);
        f.sys
            .kernel
            .seccomp
            .load_profiles(specs)
            .map_err(|e| format!("profiles failed to load: {}", e))?;
        f.sys.kernel.seccomp.set_mode(SeccompMode::Enforce);
        f.sys.attach_seccomp();
        Ok(f)
    };
    let mut steps = 0;
    for &mode in modes {
        let mut base = fixture(mode);
        let mut base_outcomes = run_functional_suite(&mut base.sys);
        if !smoke {
            base_outcomes.extend(run_service_suite(&mut base.sys));
        }

        let mut enf = enforced_fixture(mode)?;
        let mut enf_outcomes = run_functional_suite(&mut enf.sys);
        if !smoke {
            enf_outcomes.extend(run_service_suite(&mut enf.sys));
            // The workloads mirror the derivation's fresh-boot split;
            // their observable gate is the violation counter below.
            let mut w = enforced_fixture(mode)?;
            run_profiled_workloads(&mut w);
            let violations = w.sys.kernel.seccomp.total_violations();
            if violations > 0 {
                return Err(format!(
                    "{:?} workload run recorded {} violation(s) under enforcement",
                    mode, violations
                ));
            }
        }

        if base_outcomes != enf_outcomes {
            return Err(format!(
                "{:?} battery regressed under enforcement: {}",
                mode,
                first_outcome_divergence(&base_outcomes, &enf_outcomes)
            ));
        }
        let violations = enf.sys.kernel.seccomp.total_violations();
        if violations > 0 {
            let first: Vec<String> = enf
                .sys
                .kernel
                .seccomp
                .violations()
                .iter()
                .take(5)
                .map(|v| format!("{} by {}", v.syscall, v.binary.as_str()))
                .collect();
            return Err(format!(
                "{:?} run recorded {} violation(s) under enforcement; first: {}",
                mode,
                violations,
                first.join(", ")
            ));
        }
        steps += enf_outcomes.len();
    }
    Ok(EnforceSummary {
        modes: modes.len(),
        steps,
    })
}

/// The derived profiles in the kernel's own line grammar — what an admin
/// would write to `/proc/seccomp/profiles` to load them by hand.
pub fn profiles_proc_text(specs: &[ProfileSpec]) -> String {
    let mut s = String::new();
    for spec in specs {
        s.push_str(&render_profile_line(spec));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<ProfileSpec> {
        vec![
            ProfileSpec::allowing("/bin/ping", &["socket", "sendto", "close", "getuid"]),
            ProfileSpec::allowing("/bin/sh", &["open", "read", "write", "close", "fork"]),
        ]
    }

    #[test]
    fn json_roundtrips_through_the_kernel_grammar() {
        let specs = sample();
        let text = profiles_json(&specs);
        let parsed = parse_profiles(&text).expect("self-emitted document parses");
        assert_eq!(parsed.len(), specs.len());
        for (a, b) in parsed.iter().zip(specs.iter()) {
            assert_eq!(a.binary, b.binary);
            assert_eq!(a.allow, b.allow);
            assert_eq!(a.deny_action, b.deny_action);
        }
    }

    #[test]
    fn report_carries_the_aggregate_number() {
        let specs = sample();
        let report = render_report(&specs);
        assert!(report.contains("/bin/ping"));
        assert!(report.contains("average reachable"));
        let avg = average_pct(&specs);
        assert!(avg > 0.0 && avg < 50.0, "avg {}", avg);
    }

    #[test]
    fn proc_text_loads_into_a_fresh_kernel() {
        let specs = sample();
        let text = profiles_proc_text(&specs);
        let parsed = Seccomp::parse_profiles_text(&text).expect("grammar roundtrip");
        assert_eq!(parsed.len(), specs.len());
    }

    // The full derivation + enforcement matrix is exercised by
    // `tables seccomp-derive` in ci.sh; here a trimmed single-mode pass
    // proves the pipeline wiring (record -> specs -> enforce) end to end.
    #[test]
    fn functional_battery_derives_and_enforces_on_protego() {
        let recorder = ProfileRecorder::new();
        let mut f = fixture(SystemMode::Protego);
        f.sys
            .kernel
            .register_interceptor(Box::new(recorder.clone()));
        let baseline = run_functional_suite(&mut f.sys);
        let specs = recorder.specs();
        assert!(!specs.is_empty(), "battery must profile some binaries");

        let mut enf = fixture(SystemMode::Protego);
        enf.sys.kernel.seccomp.load_profiles(&specs).unwrap();
        enf.sys.kernel.seccomp.set_mode(SeccompMode::Enforce);
        enf.sys.attach_seccomp();
        let outcomes = run_functional_suite(&mut enf.sys);
        assert_eq!(baseline, outcomes, "battery must pass under enforcement");
        assert_eq!(enf.sys.kernel.seccomp.total_violations(), 0);
    }
}
