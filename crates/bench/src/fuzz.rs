//! The adversarial scenario fuzzer behind `tables fuzz` (ROADMAP item
//! 3): a seeded generator that composes namespace mutations,
//! mount/umount churn, policy reloads, credential dances, and
//! mid-operation fault storms into [`Scenario`] programs, runs each one
//! differentially under legacy and Protego
//! ([`userland::scenario::run_differential`]), and greedily shrinks any
//! failing scenario to a minimal reproducer ready to commit to the
//! `tests/fuzz_regressions.rs` corpus.
//!
//! Generation is a pure function of `(family, seed)` — the campaign's
//! double-generation check asserts byte-identical
//! [`Scenario::render`] output, which is what makes a printed failing
//! seed a complete bug report.
//!
//! Generator policy (what the grammar deliberately avoids):
//!
//! * equivalence-judged (fault-free) scenarios never `unshare` as a
//!   non-root actor — unprivileged user namespaces are a *documented*
//!   divergence (the Protego image models a >=3.8 kernel, legacy 3.6),
//!   so only fault-plan scenarios (judged by per-mode determinism)
//!   exercise them;
//! * net ops stay out entirely: the divergence suite documents the
//!   deliberate cross-mode differences there (raw sockets, spoofing).

use sim_kernel::error::Errno;
use sim_kernel::task::NsKind;
use std::time::{Duration, Instant};
use userland::scenario::{failure_signature, run_differential, Failure, Scenario, ScenarioOp};

/// Deterministic xorshift64 — same construction as the kernel's fault
/// injector PRNG (which is private to the kernel crate by design; the
/// generator must not share its stream anyway).
#[derive(Clone, Debug)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15).max(1),
        }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn pick<'a, T>(&mut self, pool: &'a [T]) -> &'a T {
        &pool[self.below(pool.len())]
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

/// The scenario families the generator knows how to compose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Directory/file/symlink churn in the scratch tree, including
    /// rename-into-own-subtree and symlink-loop pressure.
    Namespace,
    /// `/bin/mount` / `/bin/umount` churn over the fstab mountpoints.
    MountChurn,
    /// setuid/setgid/setgroups interleavings with credential read-backs
    /// and cred-sensitive fs ops.
    CredentialDance,
    /// fstab edits + monitord sync, then mounts against the new policy.
    PolicyReload,
    /// A mixed op stream under a seeded errno storm and scheduled
    /// one-shot faults; judged by per-mode determinism + security.
    FaultStorm,
}

impl Family {
    /// Every family, in campaign order.
    pub const ALL: [Family; 5] = [
        Family::Namespace,
        Family::MountChurn,
        Family::CredentialDance,
        Family::PolicyReload,
        Family::FaultStorm,
    ];

    /// Short name used in scenario labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            Family::Namespace => "namespace",
            Family::MountChurn => "mount-churn",
            Family::CredentialDance => "credential-dance",
            Family::PolicyReload => "policy-reload",
            Family::FaultStorm => "fault-storm",
        }
    }
}

const DIRS: [&str; 7] = [
    "/tmp/fuzz/a",
    "/tmp/fuzz/b",
    "/tmp/fuzz/c",
    "/tmp/fuzz/a/d",
    "/tmp/fuzz/a/e",
    "/tmp/fuzz/b/d",
    "/tmp/fuzz/c/d",
];

const FILES: [&str; 6] = [
    "/tmp/fuzz/f0",
    "/tmp/fuzz/f1",
    "/tmp/fuzz/a/f0",
    "/tmp/fuzz/a/f1",
    "/tmp/fuzz/b/f0",
    "/tmp/fuzz/a/d/f0",
];

const LINKS: [&str; 3] = ["/tmp/fuzz/l0", "/tmp/fuzz/l1", "/tmp/fuzz/a/l0"];

/// Fstab-backed mountpoints every actor may try (cdrom is `user`, usb is
/// `users`, the Private dirs are per-user fuse mounts).
const MOUNTPOINTS: [&str; 4] = [
    "/mnt/cdrom",
    "/media/usb",
    "/home/alice/Private",
    "/home/bob/Private",
];

fn non_root_actor(rng: &mut XorShift64) -> usize {
    1 + rng.below(2)
}

fn any_actor(rng: &mut XorShift64) -> usize {
    rng.below(3)
}

/// One random fs-churn op (the namespace family's alphabet, also the
/// base alphabet the storm family perturbs).
fn fs_op(rng: &mut XorShift64, equivalence: bool) -> ScenarioOp {
    let actor = non_root_actor(rng);
    match rng.below(12) {
        0 => ScenarioOp::Mkdir {
            actor,
            path: rng.pick(&DIRS).to_string(),
        },
        1 => ScenarioOp::Rmdir {
            actor,
            path: rng.pick(&DIRS).to_string(),
        },
        2 => ScenarioOp::WriteFile {
            actor,
            path: rng.pick(&FILES).to_string(),
            len: rng.below(512),
        },
        3 => ScenarioOp::ReadFile {
            actor,
            path: rng.pick(&FILES).to_string(),
        },
        4 => {
            // Rename between pool paths — including a directory into its
            // own subtree (the PR-4 EINVAL class) and onto live files.
            let from = if rng.chance(40) {
                rng.pick(&DIRS).to_string()
            } else {
                rng.pick(&FILES).to_string()
            };
            let to = if rng.chance(30) {
                format!("{}/sub", from)
            } else if rng.chance(50) {
                rng.pick(&DIRS).to_string()
            } else {
                rng.pick(&FILES).to_string()
            };
            ScenarioOp::Rename { actor, from, to }
        }
        5 => {
            let pool = if rng.chance(50) {
                &FILES[..]
            } else {
                &LINKS[..]
            };
            ScenarioOp::Unlink {
                actor,
                path: rng.pick(pool).to_string(),
            }
        }
        6 => {
            // Symlinks that dangle, chain, or loop (l0 -> l1 -> l0).
            let link = rng.pick(&LINKS).to_string();
            let target = if rng.chance(30) {
                rng.pick(&LINKS).to_string()
            } else if rng.chance(50) {
                rng.pick(&FILES).to_string()
            } else {
                rng.pick(&DIRS).to_string()
            };
            ScenarioOp::Symlink {
                actor,
                target,
                link,
            }
        }
        7 => {
            let pool = if rng.chance(70) {
                &FILES[..]
            } else {
                &LINKS[..]
            };
            ScenarioOp::Stat {
                actor,
                path: rng.pick(pool).to_string(),
            }
        }
        8 => ScenarioOp::Readdir {
            actor,
            path: if rng.chance(70) {
                rng.pick(&DIRS).to_string()
            } else {
                "/tmp/fuzz".to_string()
            },
        },
        9 => ScenarioOp::Chmod {
            actor,
            path: rng.pick(&FILES).to_string(),
            mode: *rng.pick(&[0o600, 0o644, 0o711, 0o755, 0o4755]),
        },
        10 => ScenarioOp::Chown {
            actor: if rng.chance(50) { 0 } else { actor },
            path: rng.pick(&FILES).to_string(),
            uid: *rng.pick(&[0, 1000, 1001]),
        },
        _ => {
            if equivalence {
                // Unprivileged userns is a documented divergence; only
                // root unshares in equivalence-judged scenarios.
                ScenarioOp::Unshare {
                    actor: 0,
                    kind: *rng.pick(&[NsKind::User, NsKind::Mount, NsKind::Net, NsKind::Pid]),
                }
            } else {
                ScenarioOp::Unshare {
                    actor: any_actor(rng),
                    kind: *rng.pick(&[NsKind::User, NsKind::Mount, NsKind::Net, NsKind::Pid]),
                }
            }
        }
    }
}

fn mount_op(rng: &mut XorShift64, equivalence: bool) -> ScenarioOp {
    let actor = if rng.chance(20) {
        0
    } else {
        non_root_actor(rng)
    };
    match rng.below(4) {
        0 => ScenarioOp::RunMount {
            actor,
            args: vec![rng.pick(&MOUNTPOINTS).to_string()],
        },
        1 => ScenarioOp::RunMount {
            actor,
            args: vec![
                "/dev/cdrom".to_string(),
                "/mnt/cdrom".to_string(),
                "iso9660".to_string(),
                "ro,user,noauto".to_string(),
            ],
        },
        2 => {
            // An unauthorized mount onto a *nonexistent* target is a
            // documented error-precedence divergence (§4.3 class): the
            // setuid binary's fstab gate answers EPERM before the
            // syscall, the Protego kernel answers ENOENT from path
            // resolution before its policy hook. Equivalence scenarios
            // therefore stick to targets that always exist.
            let target = if equivalence {
                "/media/usb"
            } else {
                *rng.pick(&["/media/usb", "/tmp/fuzz/a"])
            };
            ScenarioOp::RunMount {
                actor,
                args: vec![
                    "/dev/sdb1".to_string(),
                    target.to_string(),
                    "vfat".to_string(),
                    "rw".to_string(),
                ],
            }
        }
        _ => ScenarioOp::RunUmount {
            actor,
            target: rng.pick(&MOUNTPOINTS).to_string(),
        },
    }
}

fn cred_op(rng: &mut XorShift64, equivalence: bool) -> ScenarioOp {
    let actor = non_root_actor(rng);
    let uids = [0u32, 1000, 1001, 1002, 4242];
    // Protego deliberately widens unprivileged setgid to any *held*
    // supplementary group (the newgrp obviation, core::lsm) — alice
    // holds 20/24/2000 — so equivalence scenarios stick to gids that
    // resolve identically in both modes: own rgids and denied targets.
    let gids: &[u32] = if equivalence {
        &[0, 27, 1000, 1001]
    } else {
        &[0, 20, 24, 27, 1000, 1001, 2000]
    };
    match rng.below(6) {
        0 => ScenarioOp::Setuid {
            actor,
            uid: *rng.pick(&uids),
        },
        1 => ScenarioOp::Seteuid {
            actor,
            uid: *rng.pick(&uids),
        },
        2 => ScenarioOp::Setgid {
            actor,
            gid: *rng.pick(gids),
        },
        3 => {
            let n = rng.below(3);
            let list: Vec<u32> = (0..=n).map(|_| *rng.pick(gids)).collect();
            ScenarioOp::Setgroups { actor, gids: list }
        }
        4 => ScenarioOp::GetIds {
            actor: any_actor(rng),
        },
        _ => fs_op(rng, equivalence),
    }
}

fn policy_ops(rng: &mut XorShift64, out: &mut Vec<ScenarioOp>) {
    // A user-mountable (or deliberately not) fstab entry appears, the
    // monitord syncs, and users churn mounts against the new policy.
    let idx = rng.below(2);
    let mnt = format!("/tmp/fuzz/mnt{}", idx);
    let options = if rng.chance(70) {
        "rw,user,noauto"
    } else {
        "rw,noauto"
    };
    out.push(ScenarioOp::Mkdir {
        actor: 0,
        path: mnt.clone(),
    });
    out.push(ScenarioOp::FstabAdd {
        device: format!("/dev/sdc{}", idx),
        mountpoint: mnt.clone(),
        fstype: "vfat".to_string(),
        options: options.to_string(),
    });
    out.push(ScenarioOp::PolicySync);
    out.push(ScenarioOp::RunMount {
        actor: non_root_actor(rng),
        args: vec![mnt.clone()],
    });
    if rng.chance(50) {
        out.push(ScenarioOp::RunUmount {
            actor: non_root_actor(rng),
            target: mnt,
        });
    }
}

/// Generates the `(family, seed)` scenario with roughly `n_ops` ops —
/// a pure function of its arguments (the campaign double-checks this by
/// re-generating and comparing rendered bytes).
pub fn generate(family: Family, seed: u64, n_ops: usize) -> Scenario {
    let mut rng = XorShift64::new(seed ^ (family.name().len() as u64) << 32);
    let name = format!("{}-{:04x}", family.name(), seed & 0xFFFF);
    let mut ops = Vec::with_capacity(n_ops);
    match family {
        Family::Namespace => {
            while ops.len() < n_ops {
                ops.push(fs_op(&mut rng, true));
            }
        }
        Family::MountChurn => {
            while ops.len() < n_ops {
                if rng.chance(30) {
                    ops.push(fs_op(&mut rng, true));
                } else {
                    ops.push(mount_op(&mut rng, true));
                }
            }
        }
        Family::CredentialDance => {
            while ops.len() < n_ops {
                ops.push(cred_op(&mut rng, true));
                if rng.chance(25) {
                    ops.push(ScenarioOp::GetIds {
                        actor: non_root_actor(&mut rng),
                    });
                }
            }
        }
        Family::PolicyReload => {
            while ops.len() < n_ops {
                if rng.chance(40) {
                    policy_ops(&mut rng, &mut ops);
                } else if rng.chance(50) {
                    ops.push(mount_op(&mut rng, true));
                } else {
                    ops.push(fs_op(&mut rng, true));
                }
            }
        }
        Family::FaultStorm => {
            while ops.len() < n_ops {
                match rng.below(4) {
                    0 => ops.push(mount_op(&mut rng, false)),
                    1 => ops.push(cred_op(&mut rng, false)),
                    _ => ops.push(fs_op(&mut rng, false)),
                }
            }
        }
    }
    let mut sc = Scenario::new(&name, ops);
    if family == Family::FaultStorm {
        if rng.chance(60) {
            sc.storm = Some((rng.next(), *rng.pick(&[20u64, 50, 100])));
        }
        let shots = 1 + rng.below(2);
        for _ in 0..shots {
            let (syscall, errno) = *rng.pick(&[
                ("mount", Errno::EIO),
                ("mount", Errno::EBUSY),
                ("write", Errno::ENOSPC),
                ("open", Errno::EMFILE),
                ("rename", Errno::EACCES),
            ]);
            sc.one_shots
                .push((syscall.to_string(), 1 + rng.below(3) as u64, errno));
        }
    }
    sc
}

/// Greedy op-removal minimizer (ddmin-style): repeatedly tries to delete
/// chunks of ops — halving the chunk size down to single ops — keeping a
/// deletion only when `eval` still reports the *same* failure signature.
/// Finally tries to drop the storm and each one-shot. Deterministic:
/// candidate order is a function of the input alone, and `eval` is a
/// deterministic differential run.
pub fn shrink<F>(scenario: &Scenario, sig: &str, eval: F) -> Scenario
where
    F: Fn(&Scenario) -> Option<String>,
{
    let mut cur = scenario.clone();
    let mut chunk = (cur.ops.len() / 2).max(1);
    loop {
        let mut progress = false;
        let mut i = 0;
        while i < cur.ops.len() {
            let mut cand = cur.clone();
            let end = (i + chunk).min(cand.ops.len());
            cand.ops.drain(i..end);
            if eval(&cand).as_deref() == Some(sig) {
                cur = cand;
                progress = true;
                // The next chunk has shifted into position i.
            } else {
                i += chunk;
            }
        }
        if chunk > 1 {
            chunk = (chunk / 2).max(1);
        } else if !progress {
            break;
        }
    }
    if cur.storm.is_some() {
        let mut cand = cur.clone();
        cand.storm = None;
        if eval(&cand).as_deref() == Some(sig) {
            cur = cand;
        }
    }
    for i in (0..cur.one_shots.len()).rev() {
        let mut cand = cur.clone();
        cand.one_shots.remove(i);
        if eval(&cand).as_deref() == Some(sig) {
            cur = cand;
        }
    }
    cur
}

/// Options for [`run_campaign`].
#[derive(Clone, Copy, Debug)]
pub struct FuzzOptions {
    /// Base seed; scenario `i` of family `f` uses `seed + i`.
    pub seed: u64,
    /// Wall-clock budget in minutes (ignored under `smoke`).
    pub mins: f64,
    /// Bounded fixed-seed tier for CI: a small fixed seed set per
    /// family plus the generation-determinism double-check.
    pub smoke: bool,
}

/// What a campaign found.
#[derive(Debug)]
pub struct CampaignResult {
    /// Scenarios executed (differential runs).
    pub scenarios: usize,
    /// Total ops across executed scenarios.
    pub ops: usize,
    /// Families exercised, in order.
    pub families: Vec<&'static str>,
    /// `false` if double-generation produced different bytes for a seed.
    pub generation_deterministic: bool,
    /// The first failing scenario: `(original, failure, minimized)`.
    pub failure: Option<(Scenario, Failure, Scenario)>,
}

impl CampaignResult {
    /// Whether the campaign is green.
    pub fn ok(&self) -> bool {
        self.generation_deterministic && self.failure.is_none()
    }
}

/// Ops per generated scenario (smoke keeps runs short so CI stays
/// inside its ~30 s budget).
fn ops_for(smoke: bool) -> usize {
    if smoke {
        12
    } else {
        24
    }
}

/// Runs a fuzzing campaign. Smoke: 2 fixed seeds per family. Timed: keep
/// cycling families with fresh seeds until the wall-clock budget runs
/// out. Stops at the first failure, which is shrunk before returning.
pub fn run_campaign(opts: FuzzOptions) -> CampaignResult {
    let mut result = CampaignResult {
        scenarios: 0,
        ops: 0,
        families: Family::ALL.iter().map(|f| f.name()).collect(),
        generation_deterministic: true,
        failure: None,
    };
    let n_ops = ops_for(opts.smoke);
    let deadline = if opts.smoke {
        None
    } else {
        Some(Instant::now() + Duration::from_secs_f64(opts.mins * 60.0))
    };
    let seeds_per_family: u64 = if opts.smoke { 32 } else { u64::MAX };
    let mut round = 0u64;
    'campaign: loop {
        if round >= seeds_per_family {
            break;
        }
        for family in Family::ALL {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    break 'campaign;
                }
            }
            let seed = opts.seed.wrapping_add(round);
            let sc = generate(family, seed, n_ops);
            // Determinism gate: the same seed must yield byte-identical
            // scenario programs.
            if generate(family, seed, n_ops).render() != sc.render() {
                result.generation_deterministic = false;
                break 'campaign;
            }
            result.scenarios += 1;
            result.ops += sc.ops.len();
            let outcome = run_differential(&sc);
            if let Some(failure) = outcome.failure {
                let sig = failure.signature();
                let minimized = shrink(&sc, &sig, failure_signature);
                result.failure = Some((sc, failure, minimized));
                break 'campaign;
            }
        }
        round += 1;
        if deadline.is_none() && round >= seeds_per_family {
            break;
        }
    }
    result
}

/// Renders a minimized failing scenario as a self-contained snippet
/// ready to paste into the `tests/fuzz_regressions.rs` corpus.
pub fn regression_snippet(minimized: &Scenario, failure: &Failure) -> String {
    let mut out = String::new();
    out.push_str("// Minimized by `tables fuzz`; failure was:\n");
    for line in failure.to_string().lines().take(4) {
        out.push_str(&format!("//   {}\n", line));
    }
    out.push_str("const SCENARIO: &str = \"\\\n");
    for line in minimized.render().lines() {
        out.push_str(&format!("{}\\n\\\n", line));
    }
    out.push_str("\";\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_families_distinct() {
        for family in Family::ALL {
            let a = generate(family, 7, 12);
            let b = generate(family, 7, 12);
            assert_eq!(
                a.render(),
                b.render(),
                "{} not deterministic",
                family.name()
            );
            let c = generate(family, 8, 12);
            assert_ne!(a.render(), c.render(), "{} ignores its seed", family.name());
        }
        assert!(generate(Family::FaultStorm, 7, 12).has_faults());
        assert!(!generate(Family::Namespace, 7, 12).has_faults());
    }

    #[test]
    fn equivalence_scenarios_never_unshare_unprivileged() {
        for family in [Family::Namespace, Family::MountChurn, Family::PolicyReload] {
            for seed in 0..24 {
                let sc = generate(family, seed, 20);
                assert!(!sc.has_faults());
                for op in &sc.ops {
                    if let ScenarioOp::Unshare { actor, .. } = op {
                        assert_eq!(*actor, 0, "unprivileged unshare in {}", sc.name);
                    }
                }
            }
        }
    }

    /// Synthetic-oracle shrinker check: failure iff a write to f0 is
    /// followed (anywhere later) by an unlink of f0. The shrinker must
    /// reduce to exactly that pair, preserving the signature.
    #[test]
    fn shrinker_minimizes_to_the_triggering_pair() {
        let sig_of = |sc: &Scenario| -> Option<String> {
            let mut wrote = false;
            for op in &sc.ops {
                match op {
                    ScenarioOp::WriteFile { path, .. } if path == "/tmp/fuzz/f0" => wrote = true,
                    ScenarioOp::Unlink { path, .. } if path == "/tmp/fuzz/f0" && wrote => {
                        return Some("synthetic:write-then-unlink".to_string());
                    }
                    _ => {}
                }
            }
            None
        };
        let sc = generate(Family::Namespace, 3, 40);
        // Plant the pair among the noise.
        let mut planted = sc.clone();
        planted.ops.insert(
            5,
            ScenarioOp::WriteFile {
                actor: 1,
                path: "/tmp/fuzz/f0".into(),
                len: 3,
            },
        );
        planted.ops.insert(
            20,
            ScenarioOp::Unlink {
                actor: 1,
                path: "/tmp/fuzz/f0".into(),
            },
        );
        let sig = sig_of(&planted).expect("planted scenario must fail");
        let min = shrink(&planted, &sig, sig_of);
        assert_eq!(
            sig_of(&min).as_deref(),
            Some(sig.as_str()),
            "minimized scenario must reproduce the parent signature"
        );
        assert_eq!(
            min.ops.len(),
            2,
            "minimal reproducer is the pair: {:#?}",
            min.ops
        );
    }
}
