//! Property tests for the fuzzer's shrinker and generator (vendored
//! proptest subset: deterministic sampling, no built-in shrinking —
//! which is fine, the subject under test IS our own shrinker).

use bench::fuzz::{generate, shrink, Family};
use proptest::prelude::*;
use userland::scenario::{failure_signature, run_differential, Failure, Scenario, ScenarioOp};

/// A synthetic oracle: the scenario "fails" iff a write to f0 precedes
/// an unlink of f0. Cheap enough to run hundreds of shrink evals.
fn synthetic_sig(sc: &Scenario) -> Option<String> {
    let mut wrote = false;
    for op in &sc.ops {
        match op {
            ScenarioOp::WriteFile { path, .. } if path == "/tmp/fuzz/f0" => wrote = true,
            ScenarioOp::Unlink { path, .. } if path == "/tmp/fuzz/f0" && wrote => {
                return Some("synthetic:write-then-unlink".to_string());
            }
            _ => {}
        }
    }
    None
}

fn planted(family: Family, seed: u64, n_ops: usize) -> Scenario {
    let mut sc = generate(family, seed, n_ops);
    // Strip pool ops that would interact with the planted pair so the
    // oracle's trigger is exactly the two planted ops.
    sc.ops.retain(|op| {
        !matches!(op, ScenarioOp::WriteFile { path, .. } | ScenarioOp::Unlink { path, .. }
            if path == "/tmp/fuzz/f0")
    });
    let at = sc.ops.len() / 3;
    sc.ops.insert(
        at,
        ScenarioOp::WriteFile {
            actor: 1,
            path: "/tmp/fuzz/f0".into(),
            len: 1,
        },
    );
    sc.ops.push(ScenarioOp::Unlink {
        actor: 1,
        path: "/tmp/fuzz/f0".into(),
    });
    sc
}

proptest! {
    /// The minimized scenario reproduces the parent's failure signature,
    /// never grows, and shrinking twice from the same input yields
    /// byte-identical results (determinism per seed).
    #[test]
    fn shrinking_preserves_signature_and_is_deterministic(seed in 0u64..48) {
        let sc = planted(Family::Namespace, seed, 24);
        let sig = synthetic_sig(&sc).expect("planted scenario must fail");
        let min1 = shrink(&sc, &sig, synthetic_sig);
        let min2 = shrink(&sc, &sig, synthetic_sig);
        prop_assert_eq!(min1.render(), min2.render());
        prop_assert_eq!(synthetic_sig(&min1).as_deref(), Some(sig.as_str()));
        prop_assert!(min1.ops.len() <= sc.ops.len());
        // The synthetic trigger is a 2-op pair; greedy ddmin must find it.
        prop_assert_eq!(min1.ops.len(), 2);
    }

    /// Generation is a pure function of (family, seed): re-rendering and
    /// a parse round-trip both reproduce the same bytes.
    #[test]
    fn generation_roundtrips_through_the_wire_format(seed in 0u64..64) {
        for family in Family::ALL {
            let sc = generate(family, seed, 16);
            prop_assert_eq!(generate(family, seed, 16).render(), sc.render());
            let reparsed = Scenario::parse(&sc.render()).expect("self-rendered scenario parses");
            prop_assert_eq!(reparsed.render(), sc.render());
        }
    }
}

/// Shrinking against the *real* differential oracle: pad the documented
/// setgid-widening divergence with generated noise; the minimizer must
/// recover a reproducer with the same first-divergence signature.
#[test]
fn real_oracle_shrink_recovers_the_divergence() {
    let mut sc = generate(Family::Namespace, 11, 8);
    sc.ops.insert(4, ScenarioOp::Setgid { actor: 1, gid: 24 });
    let failure = run_differential(&sc).failure.expect("divergence expected");
    let sig = failure.signature();
    assert!(
        matches!(&failure, Failure::Divergence { legacy, protego, .. }
            if legacy.contains("EPERM") && protego.contains("ok")),
        "unexpected failure: {}",
        failure
    );
    let min = shrink(&sc, &sig, failure_signature);
    assert_eq!(
        failure_signature(&min).as_deref(),
        Some(sig.as_str()),
        "minimized scenario must reproduce the parent divergence"
    );
    assert_eq!(min.ops.len(), 1, "one op suffices: {:#?}", min.ops);
}
