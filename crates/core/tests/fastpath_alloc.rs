//! Counting-allocator proof that the steady-state VFS fast path is
//! allocation-free end to end: once the interner, dcache, path-arena
//! pools and fd table are warm, a resolve/open/read/close/getuid cycle
//! under the full Protego LSM performs **zero** heap allocations.
//!
//! Built only with `--features alloc-count` (see `[[test]]` in
//! Cargo.toml) so ordinary test runs keep the stock allocator.

use protego_core::ProtegoLsm;
use sim_kernel::cred::{Credentials, Gid, Uid};
use sim_kernel::kernel::Kernel;
use sim_kernel::net::SimNet;
use sim_kernel::syscall::OpenFlags;
use sim_kernel::vfs::Mode;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

// The gate and counter are per-thread with const initializers: a
// `thread_local!` with a const block lives in native TLS and its first
// access performs no lazy-init allocation, so the allocator hooks can
// read it re-entrancy-free. Per-thread matters: the libtest harness's
// main thread blocks on an mpsc receiver while the test runs and lazily
// allocates its wait context at an arbitrary moment — a process-global
// gate would count that unrelated allocation and flake.
thread_local! {
    static GATE: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Delegates to the system allocator, counting allocations (not frees)
/// made by this thread while its gate is up, so harness and setup
/// allocations are invisible.
struct CountingAlloc;

fn count_if_gated() {
    GATE.with(|g| {
        if g.get() {
            ALLOCS.with(|a| a.set(a.get() + 1));
        }
    });
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_gated();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_if_gated();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_gated();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn fastpath_cycle(k: &Kernel, pid: sim_kernel::task::Pid, buf: &mut Vec<u8>) {
    let fd = k
        .sys_open(pid, "/etc/hosts", OpenFlags::read_only())
        .expect("open");
    buf.clear();
    k.sys_read(pid, fd, buf, 64).expect("read");
    k.sys_close(pid, fd).expect("close");
    k.sys_getuid(pid).expect("getuid");
}

#[test]
fn steady_state_resolve_open_read_is_allocation_free() {
    let k = Kernel::new(SimNet::new());
    k.install_standard_devices().expect("devices");
    k.register_lsm(Box::new(ProtegoLsm::new())).expect("lsm");
    let _root = k.spawn_init();
    k.vfs
        .install_file(
            "/etc/hosts",
            b"127.0.0.1 localhost\n",
            Mode(0o644),
            Uid::ROOT,
            Gid::ROOT,
        )
        .expect("hosts");
    let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/cat");

    // Warmup: populate the interner, the dcache entry for the path, the
    // path-arena pools, the fd slot, and the read buffer's capacity.
    let mut buf = Vec::with_capacity(4096);
    for _ in 0..64 {
        fastpath_cycle(&k, user, &mut buf);
    }

    ALLOCS.with(|a| a.set(0));
    GATE.with(|g| g.set(true));
    for _ in 0..256 {
        fastpath_cycle(&k, user, &mut buf);
    }
    GATE.with(|g| g.set(false));

    let n = ALLOCS.with(|a| a.get());
    assert_eq!(
        n, 0,
        "steady-state open/read/close/getuid cycle allocated {} times (expected 0)",
        n
    );
}
