//! Property tests for the policy parsers: totality on arbitrary input
//! (a hostile /proc write or config file must never panic the kernel
//! side) and agreement between the legacy-file and kernel grammars.

use proptest::prelude::*;
use protego_core::fstab::{fstab_to_policy, parse_fstab};
use protego_core::policy;
use protego_core::sudoers::{parse_sudoers, MapResolver};

fn resolver() -> MapResolver {
    MapResolver {
        users: vec![
            ("root".into(), 0),
            ("alice".into(), 1000),
            ("bob".into(), 1001),
        ],
        groups: vec![("admin".into(), 27), ("staff".into(), 2000)],
    }
}

proptest! {
    #[test]
    fn kernel_grammar_parsers_are_total(input in "\\PC{0,200}") {
        let _ = policy::parse_mounts(&input);
        let _ = policy::parse_binds(&input);
        let _ = policy::parse_sudo(&input);
        let _ = policy::parse_groups(&input);
        let _ = policy::parse_keyfiles(&input);
        let _ = policy::parse_ppp(&input);
        let _ = policy::parse_creddb(&input);
    }

    #[test]
    fn legacy_parsers_are_total(input in "\\PC{0,300}") {
        let _ = parse_fstab(&input);
        let _ = parse_sudoers(&input, &resolver());
    }

    /// Multiline hostile input (embedded newlines, comments, partial
    /// records) never panics and never fabricates rules from comments.
    #[test]
    fn comments_never_become_rules(body in "[a-z0-9 /._-]{0,60}") {
        let text = format!("# {}\n  # {}\n", body, body);
        prop_assert!(policy::parse_mounts(&text).unwrap().is_empty());
        prop_assert!(policy::parse_sudo(&text).unwrap().is_empty());
        let (entries, bad) = parse_fstab(&text);
        prop_assert!(entries.is_empty());
        prop_assert!(bad.is_empty());
    }

    /// The fstab -> kernel-grammar pipeline round-trips for well-formed
    /// user entries: what the daemon pushes is exactly what the file
    /// said.
    #[test]
    fn fstab_pipeline_roundtrip(
        dev in "[a-z][a-z0-9]{0,8}",
        mp in "[a-z][a-z0-9]{0,8}",
        fstype in "(iso9660|vfat|ext4|auto)",
        users in any::<bool>(),
        ro in any::<bool>(),
    ) {
        let opts = format!(
            "{}{},noauto",
            if ro { "ro," } else { "" },
            if users { "users" } else { "user" }
        );
        let line = format!("/dev/{} /mnt/{} {} {} 0 0\n", dev, mp, fstype, opts);
        let (entries, bad) = parse_fstab(&line);
        prop_assert!(bad.is_empty());
        let rules = fstab_to_policy(&entries);
        prop_assert_eq!(rules.len(), 1);
        // Push through the kernel grammar and back.
        let text = policy::render_mounts(&rules);
        let back = policy::parse_mounts(&text).unwrap();
        prop_assert_eq!(&back, &rules);
        prop_assert_eq!(&back[0].source, &format!("/dev/{}", dev));
        prop_assert_eq!(back[0].read_only, ro);
        prop_assert_eq!(
            back[0].scope,
            if users { policy::MountScope::Users } else { policy::MountScope::User }
        );
        prop_assert_eq!(back[0].fstype.is_none(), fstype == "auto");
    }

    /// Sudoers name resolution: rules referencing unknown principals are
    /// rejected per-line, never silently granted.
    #[test]
    fn unknown_principals_never_grant(name in "[a-z]{1,10}") {
        let known = ["root", "alice", "bob"].contains(&name.as_str());
        let text = format!("{} ALL=(ALL) ALL\n", name);
        let (rules, errors) = parse_sudoers(&text, &resolver());
        if known {
            prop_assert_eq!(rules.len(), 1);
            prop_assert!(errors.is_empty());
        } else if name == "ALL" {
            prop_assert_eq!(rules.len(), 1);
        } else {
            prop_assert!(rules.is_empty());
            prop_assert_eq!(errors.len(), 1);
        }
    }
}
