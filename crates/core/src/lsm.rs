//! The Protego security module.
//!
//! Implements every policy category of the paper's study (Table 4) as LSM
//! hook logic over the [`crate::policy::PolicySet`] configured through
//! `/proc/protego/*`:
//!
//! * **mount/umount** — whitelist of (device, mountpoint, options, scope);
//! * **bind** — privileged ports allocated to (binary, uid) instances;
//! * **socket** — raw/packet sockets for everyone, scoped by netfilter;
//! * **setuid/setgid** — sudoers-derived delegation with kernel-tracked
//!   authentication recency and setuid-on-exec for command-restricted
//!   rules;
//! * **ioctl** — non-conflicting route additions and safe modem options
//!   for unprivileged pppd; dm-crypt metadata stays privileged (the `/sys`
//!   attribute is the unprivileged replacement);
//! * **file open** — binary-identity grants (ssh-keysign) and
//!   reauthentication-gated, CLOEXEC-forced shadow fragments.

use crate::policy::{
    self, AuthReq, BindRule, CmdSpec, GroupRule, KeyFileRule, MountRule, MountScope, PolicySet,
    Principal, SudoRule, Target,
};
use sim_kernel::caps::Cap;
use sim_kernel::cred::{Credentials, Gid, Uid};
use sim_kernel::dev::{ModemOpt, ModemState};
use sim_kernel::error::{Errno, KResult};
use sim_kernel::lsm::{
    AuthScope, BindRequest, Decision, EnvPolicy, ExecCtx, ExecDecision, FileDecision, FileOpenCtx,
    KmsOp, MountRequest, PendingSetuid, SecurityModule, SetidCtx, SetuidDecision, UmountRequest,
};
use sim_kernel::net::{Domain, ProtoMatch, Route, RouteTable, Rule, SockType, Verdict};
use sim_kernel::sync::lock;
use sim_kernel::trace::CacheStats;
use sim_kernel::vfs::{Access, Name};
use std::collections::HashMap;
use std::sync::Mutex;

/// The authentication recency window (sudo's 5 minutes), in logical
/// seconds.
pub const AUTH_WINDOW: u64 = 300;

/// Bound on the keyfile-rule lookup cache; flushed wholesale on overflow.
const KEYFILE_CACHE_CAP: usize = 1024;

/// The Protego LSM.
#[derive(Debug, Default)]
pub struct ProtegoLsm {
    policy: PolicySet,
    /// Identifier of the policy rule the most recent hook matched, drained
    /// by the kernel (via [`SecurityModule::take_matched_rule`]) to attach
    /// rule provenance to audit events. Hooks take `&self`, hence the
    /// interior mutability.
    matched: Mutex<Option<String>>,
    /// Interned path → index of the governing keyfile rule (None = no
    /// rule). Keyed on [`Name`] so the steady-state probe hashes a u32
    /// and touches no heap; the cache stores the *index* rather than the
    /// decision so the rule-provenance side effects still fire on every
    /// hook. Dropped on any policy write.
    keyfile_cache: Mutex<HashMap<Name, Option<usize>>>,
    keyfile_cache_stats: Mutex<CacheStats>,
}

impl ProtegoLsm {
    /// An empty-policy module: everything behaves like stock Linux until
    /// the monitoring daemon (or the administrator) configures it.
    pub fn new() -> ProtegoLsm {
        ProtegoLsm::default()
    }

    /// A module preconfigured with a policy set (used by image builders).
    pub fn with_policy(policy: PolicySet) -> ProtegoLsm {
        ProtegoLsm {
            policy,
            ..ProtegoLsm::default()
        }
    }

    /// Records the rule identifier the current hook matched.
    fn note_rule(&self, rule: String) {
        *lock(&self.matched) = Some(rule);
    }

    /// Read-only view of the active policy.
    pub fn policy(&self) -> &PolicySet {
        &self.policy
    }

    fn find_mount_rule(&self, req: &MountRequest) -> Option<&MountRule> {
        self.policy.mounts.iter().find(|r| {
            r.source == req.source
                && r.mountpoint == req.target
                && r.fstype.as_deref().map(|t| t == req.fstype).unwrap_or(true)
        })
    }

    fn find_umount_rule(&self, target: &str) -> Option<&MountRule> {
        self.policy.mounts.iter().find(|r| r.mountpoint == target)
    }

    fn find_bind_rule(&self, port: u16, tcp: bool) -> Option<&BindRule> {
        self.policy
            .binds
            .iter()
            .find(|r| r.port == port && r.tcp == tcp)
    }

    fn principal_matches(p: Principal, cred: &Credentials) -> bool {
        match p {
            Principal::Any => true,
            Principal::Uid(u) => cred.ruid == Uid(u),
            Principal::Gid(g) => cred.in_group(Gid(g)),
        }
    }

    fn find_sudo_rule(&self, cred: &Credentials, target: Uid) -> Option<&SudoRule> {
        self.policy.sudo.iter().find(|r| {
            Self::principal_matches(r.from, cred)
                && match r.target {
                    Target::Any => true,
                    Target::Uid(u) => target == Uid(u),
                }
        })
    }

    fn group_rule(&self, gid: Gid) -> Option<&GroupRule> {
        self.policy.groups.iter().find(|g| g.gid == gid.0)
    }

    fn keyfile_rule(&self, path: &str) -> Option<&KeyFileRule> {
        let _span = sim_kernel::trace::span(sim_kernel::trace::Pathway::PolicyCache);
        // Any path the kernel hands a hook has already been interned by
        // the VFS walk, so a `lookup` miss means the path was never seen
        // and cannot be cached (probe without polluting the interner).
        if let Some(key) = Name::lookup(path) {
            let cache = lock(&self.keyfile_cache);
            if let Some(&idx) = cache.get(&key) {
                lock(&self.keyfile_cache_stats).hits += 1;
                return idx.map(|i| &self.policy.keyfiles[i]);
            }
        }
        lock(&self.keyfile_cache_stats).misses += 1;
        let idx = self.policy.keyfiles.iter().position(|k| k.path == path);
        let mut cache = lock(&self.keyfile_cache);
        if cache.len() >= KEYFILE_CACHE_CAP {
            cache.clear();
            lock(&self.keyfile_cache_stats).invalidations += 1;
        }
        cache.insert(Name::intern(path), idx);
        idx.map(|i| &self.policy.keyfiles[i])
    }

    /// Drops the keyfile lookup cache (policy reload).
    fn flush_keyfile_cache(&self) {
        let mut cache = lock(&self.keyfile_cache);
        if !cache.is_empty() {
            lock(&self.keyfile_cache_stats).invalidations += 1;
        }
        cache.clear();
    }

    /// Counters of the keyfile-rule lookup cache.
    pub fn keyfile_cache_stats(&self) -> CacheStats {
        *lock(&self.keyfile_cache_stats)
    }

    fn is_shadow_fragment(&self, path: &str) -> bool {
        self.policy
            .creddb
            .shadow_prefixes
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }

    /// The default raw-socket whitelist of §4.1.1, mined from the studied
    /// binaries: no spoofing, ICMP echo (ping/mtr), traceroute UDP probes,
    /// ARP (arping); all other raw traffic drops.
    pub fn default_raw_rules() -> Vec<Rule> {
        vec![
            Rule {
                name: "protego-no-spoof".into(),
                raw_socket_only: true,
                proto: None,
                icmp_types: None,
                dst_ports: None,
                spoofed: Some(true),
                verdict: Verdict::Drop,
            },
            Rule {
                name: "protego-allow-icmp-echo".into(),
                raw_socket_only: true,
                proto: Some(ProtoMatch::Icmp),
                icmp_types: Some(vec![0, 8]),
                dst_ports: None,
                spoofed: None,
                verdict: Verdict::Accept,
            },
            Rule {
                name: "protego-allow-traceroute-probes".into(),
                raw_socket_only: true,
                proto: Some(ProtoMatch::Udp),
                icmp_types: None,
                dst_ports: Some((33434, 33534)),
                spoofed: None,
                verdict: Verdict::Accept,
            },
            Rule {
                name: "protego-allow-arp".into(),
                raw_socket_only: true,
                proto: Some(ProtoMatch::Arp),
                icmp_types: None,
                dst_ports: None,
                spoofed: None,
                verdict: Verdict::Accept,
            },
            Rule {
                name: "protego-drop-raw-default".into(),
                raw_socket_only: true,
                proto: None,
                icmp_types: None,
                dst_ports: None,
                spoofed: None,
                verdict: Verdict::Drop,
            },
        ]
    }
}

impl SecurityModule for ProtegoLsm {
    fn name(&self) -> &'static str {
        "protego"
    }

    // ------------------------------------------------------------------
    // mount / umount (§2, §4.2)
    // ------------------------------------------------------------------

    fn sb_mount(&self, cred: &Credentials, req: &MountRequest) -> Decision {
        if cred.euid.is_root() {
            // The administrator path is unchanged.
            return Decision::UseDefault;
        }
        match self.find_mount_rule(req) {
            Some(rule) => {
                self.note_rule(format!("mounts:{}->{}", rule.source, rule.mountpoint));
                if rule.read_only && !req.options.read_only {
                    // The whitelist requires ro; a rw request is refused
                    // outright rather than falling back to EPERM, so the
                    // user sees why.
                    Decision::Deny(Errno::EACCES)
                } else {
                    Decision::Allow
                }
            }
            None => Decision::UseDefault,
        }
    }

    fn sb_umount(&self, cred: &Credentials, req: &UmountRequest) -> Decision {
        if cred.euid.is_root() {
            return Decision::UseDefault;
        }
        match self.find_umount_rule(&req.target) {
            Some(rule) => {
                self.note_rule(format!(
                    "mounts:{}->{} scope={:?}",
                    rule.source, rule.mountpoint, rule.scope
                ));
                match rule.scope {
                    MountScope::Users => Decision::Allow,
                    MountScope::User => {
                        if req.mounted_by == cred.ruid {
                            Decision::Allow
                        } else {
                            Decision::Deny(Errno::EPERM)
                        }
                    }
                }
            }
            None => Decision::UseDefault,
        }
    }

    // ------------------------------------------------------------------
    // socket / bind (§4.1.1, §4.1.3)
    // ------------------------------------------------------------------

    fn socket_create(
        &self,
        _cred: &Credentials,
        _domain: Domain,
        _stype: SockType,
        _protocol: u8,
    ) -> Decision {
        // Anyone may create raw/packet sockets; outgoing packets are
        // subject to the netfilter whitelist installed at boot.
        Decision::Allow
    }

    fn socket_bind(&self, cred: &Credentials, req: &BindRequest) -> Decision {
        match self.find_bind_rule(req.port, req.tcp) {
            Some(rule) => {
                self.note_rule(format!(
                    "bind:{}/{} -> ({}, {})",
                    rule.port,
                    if rule.tcp { "tcp" } else { "udp" },
                    rule.binary,
                    rule.uid
                ));
                if rule.binary == req.binary && Uid(rule.uid) == cred.euid {
                    Decision::Allow
                } else {
                    // The port is allocated to a different application
                    // instance: nobody else gets it, root included.
                    Decision::Deny(Errno::EACCES)
                }
            }
            None => Decision::UseDefault,
        }
    }

    // ------------------------------------------------------------------
    // setuid / setgid (§4.3)
    // ------------------------------------------------------------------

    fn task_setuid(&self, ctx: &SetidCtx, target: Uid) -> SetuidDecision {
        // Privileged daemons dropping privilege, and transitions among
        // already-held ids, keep stock semantics.
        if ctx.cred.has_cap(Cap::Setuid) || target == ctx.cred.ruid || target == ctx.cred.suid {
            return SetuidDecision::UseDefault;
        }
        let rule = match self.find_sudo_rule(ctx.cred, target) {
            Some(r) => r,
            None => return SetuidDecision::UseDefault, // -> EPERM
        };
        self.note_rule(format!(
            "sudoers:{:?} -> {:?} cmd={:?} auth={:?}",
            rule.from, rule.target, rule.cmd, rule.auth
        ));
        // Authentication, enforced by the kernel, with recency (§4.3).
        match rule.auth {
            AuthReq::None => {}
            AuthReq::Invoker => {
                let scope = AuthScope::User(ctx.cred.ruid);
                if !ctx.authed_for(scope, AUTH_WINDOW) {
                    return SetuidDecision::NeedAuth(scope);
                }
            }
            AuthReq::Target => {
                let scope = AuthScope::User(target);
                if !ctx.authed_for(scope, AUTH_WINDOW) {
                    return SetuidDecision::NeedAuth(scope);
                }
            }
        }
        match &rule.cmd {
            CmdSpec::Any => SetuidDecision::Allow,
            CmdSpec::List(cmds) => SetuidDecision::Pending(PendingSetuid {
                target,
                allowed_binaries: cmds.clone(),
                require_target_auth: false,
                keep_env: rule.keep_env.clone(),
            }),
        }
    }

    fn task_setgid(&self, ctx: &SetidCtx, target: Gid) -> SetuidDecision {
        if ctx.cred.has_cap(Cap::Setgid) {
            return SetuidDecision::UseDefault;
        }
        // Transitions to already-held ids keep stock semantics (mirrors
        // task_setuid): stock grants these anyway, and answering
        // UseDefault keeps the hot re-assert path (every `id`-style
        // invocation calls setgid(own gid)) off the audit/metrics
        // emission path.
        if target == ctx.cred.rgid || target == ctx.cred.sgid {
            return SetuidDecision::UseDefault;
        }
        // A member may switch to any of her groups (stock allows only
        // rgid/sgid; newgrp's job was exactly this widening).
        if ctx.cred.in_group(target) {
            self.note_rule(format!("groups:membership gid={}", target.0));
            return SetuidDecision::Allow;
        }
        match self.group_rule(target) {
            Some(g) if g.password_protected => {
                self.note_rule(format!("groups:{} password", g.gid));
                let scope = AuthScope::Group(target);
                if ctx.authed_for(scope, AUTH_WINDOW) {
                    SetuidDecision::Allow
                } else {
                    SetuidDecision::NeedAuth(scope)
                }
            }
            _ => SetuidDecision::UseDefault, // -> EPERM
        }
    }

    fn bprm_check(&self, ctx: &ExecCtx) -> ExecDecision {
        if let Some(p) = &ctx.pending {
            // Resolve a setuid-on-exec transition: the exec must name an
            // allowed binary, else permission denied (§4.3's deliberate
            // change in error behaviour).
            self.note_rule(format!(
                "sudoers:pending target={} cmds={:?}",
                p.target, p.allowed_binaries
            ));
            if !p.allowed_binaries.iter().any(|b| b == &ctx.binary) {
                return ExecDecision::Deny(Errno::EACCES);
            }
            if p.require_target_auth {
                let scope = AuthScope::User(p.target);
                if !ctx.authed_for(scope, AUTH_WINDOW) {
                    return ExecDecision::NeedAuth(scope);
                }
            }
            let mut cred = ctx.cred.clone();
            cred.ruid = p.target;
            cred.euid = p.target;
            cred.suid = p.target;
            cred.fsuid = p.target;
            cred.caps = if p.target.is_root() {
                sim_kernel::caps::CapSet::full()
            } else {
                sim_kernel::caps::CapSet::EMPTY
            };
            return ExecDecision::Transition {
                cred,
                env: EnvPolicy::ClearExcept(p.keep_env.clone()),
            };
        }
        // No pending transition: the setuid bit (if any) keeps stock
        // semantics — the Protego image simply ships without the bits, and
        // §4.6 allows an administrator to re-enable one deliberately.
        ExecDecision::UseDefault
    }

    // ------------------------------------------------------------------
    // ioctls (§4.1.2, Table 4)
    // ------------------------------------------------------------------

    fn ioctl_route_add(&self, cred: &Credentials, route: &Route, table: &RouteTable) -> Decision {
        if cred.euid.is_root() {
            return Decision::UseDefault;
        }
        if !self.policy.ppp.user_routes {
            return Decision::UseDefault;
        }
        self.note_rule("ppp:user_routes".to_string());
        match table.conflict_with(route) {
            None => Decision::Allow,
            Some(_) => Decision::Deny(Errno::EEXIST),
        }
    }

    fn ioctl_modem(&self, cred: &Credentials, opt: ModemOpt, state: &ModemState) -> Decision {
        if cred.euid.is_root() {
            return Decision::UseDefault;
        }
        if self.policy.ppp.safe_modem_opts && opt.is_safe() && state.in_use_by.is_none() {
            // "A user may configure a modem (if not in use)" — Table 4.
            self.note_rule("ppp:safe_modem_opts".to_string());
            return Decision::Allow;
        }
        if self.policy.ppp.safe_modem_opts && opt.is_safe() {
            // Already claimed: only the claimer's further configuration is
            // mediated by the claim ioctl; be conservative here.
            self.note_rule("ppp:safe_modem_opts".to_string());
            return Decision::Allow;
        }
        Decision::UseDefault
    }

    fn ioctl_dmcrypt(&self, _cred: &Credentials) -> Decision {
        // The all-or-nothing ioctl stays privileged; the `/sys` attribute
        // is the unprivileged replacement (Table 4: "abandon this ioctl").
        Decision::UseDefault
    }

    fn ioctl_kms(&self, _cred: &Credentials, _op: KmsOp) -> Decision {
        // KMS already removed the privilege requirement in-kernel (§4.5).
        Decision::UseDefault
    }

    // ------------------------------------------------------------------
    // file open (§4.4, §4.6)
    // ------------------------------------------------------------------

    fn file_open(&self, ctx: &FileOpenCtx) -> FileDecision {
        // Binary-identity grants: only the named binary may open the key
        // file, regardless of uid ("instead of, or in addition to, user
        // IDs" — Table 4).
        if let Some(rule) = self.keyfile_rule(ctx.path) {
            self.note_rule(format!("keyfiles:{} -> {}", rule.path, rule.binary));
            return if ctx.binary == rule.binary && !ctx.access.wants_write() {
                FileDecision::AllowCloexec
            } else {
                FileDecision::Deny(Errno::EACCES)
            };
        }
        // Per-user shadow fragments: reading your own requires a fresh
        // authentication, and the handle may not be inherited (§4.4).
        if self.is_shadow_fragment(ctx.path) && ctx.access.wants_read() {
            self.note_rule(format!("creddb:{}", ctx.path));
            if ctx.cred.euid.is_root() {
                // The trusted authentication agent and root tools.
                return FileDecision::UseDefault;
            }
            if !ctx.dac_allows || ctx.file_owner != ctx.cred.fsuid {
                return FileDecision::UseDefault; // DAC already refuses others.
            }
            let scope = AuthScope::User(ctx.cred.ruid);
            return if ctx.authed_for(scope, AUTH_WINDOW) {
                FileDecision::AllowCloexec
            } else {
                FileDecision::NeedAuth(scope)
            };
        }
        FileDecision::UseDefault
    }

    // ------------------------------------------------------------------
    // configuration (/proc/protego/*)
    // ------------------------------------------------------------------

    fn config_nodes(&self) -> Vec<&'static str> {
        vec![
            "mounts", "bind", "sudoers", "groups", "keyfiles", "ppp", "creddb",
        ]
    }

    fn config_write(&mut self, node: &str, content: &str) -> KResult<()> {
        match node {
            "mounts" => self.policy.mounts = policy::parse_mounts(content)?,
            "bind" => self.policy.binds = policy::parse_binds(content)?,
            "sudoers" => self.policy.sudo = policy::parse_sudo(content)?,
            "groups" => self.policy.groups = policy::parse_groups(content)?,
            "keyfiles" => self.policy.keyfiles = policy::parse_keyfiles(content)?,
            "ppp" => self.policy.ppp = policy::parse_ppp(content)?,
            "creddb" => self.policy.creddb = policy::parse_creddb(content)?,
            _ => return Err(Errno::ENOENT),
        }
        // Any policy write may change what a cached lookup would answer;
        // be conservative and drop the whole cache.
        self.flush_keyfile_cache();
        Ok(())
    }

    fn config_read(&self, node: &str) -> KResult<String> {
        Ok(match node {
            "mounts" => policy::render_mounts(&self.policy.mounts),
            "bind" => policy::render_binds(&self.policy.binds),
            "sudoers" => policy::render_sudo(&self.policy.sudo),
            "groups" => policy::render_groups(&self.policy.groups),
            "keyfiles" => policy::render_keyfiles(&self.policy.keyfiles),
            "ppp" => policy::render_ppp(&self.policy.ppp),
            "creddb" => policy::render_creddb(&self.policy.creddb),
            _ => return Err(Errno::ENOENT),
        })
    }

    fn boot_netfilter_rules(&self) -> Vec<Rule> {
        Self::default_raw_rules()
    }

    fn take_matched_rule(&self) -> Option<String> {
        lock(&self.matched).take()
    }

    fn cache_stats(&self) -> Vec<(&'static str, CacheStats)> {
        vec![("protego_keyfile_lookup", self.keyfile_cache_stats())]
    }
}

/// Convenience used by exploit analysis: would the Protego policy allow
/// this (binary, uid) to bind the port?
pub fn bind_would_allow(policy: &PolicySet, port: u16, tcp: bool, binary: &str, uid: u32) -> bool {
    policy
        .binds
        .iter()
        .any(|r| r.port == port && r.tcp == tcp && r.binary == binary && r.uid == uid)
}

/// Convenience: access decision summary for diagnostics/tests.
pub fn describe_access(access: Access) -> &'static str {
    match (
        access.wants_read(),
        access.wants_write(),
        access.wants_exec(),
    ) {
        (true, true, _) => "read-write",
        (true, false, _) => "read",
        (false, true, _) => "write",
        (false, false, true) => "exec",
        _ => "none",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lsm_with(policy: PolicySet) -> ProtegoLsm {
        ProtegoLsm::with_policy(policy)
    }

    fn cdrom_policy() -> PolicySet {
        PolicySet {
            mounts: vec![MountRule {
                source: "/dev/cdrom".into(),
                mountpoint: "/mnt/cdrom".into(),
                fstype: Some("iso9660".into()),
                scope: MountScope::User,
                read_only: true,
            }],
            ..PolicySet::default()
        }
    }

    fn mount_req(source: &str, target: &str, fstype: &str, opts: &str) -> MountRequest {
        MountRequest {
            source: source.into(),
            target: target.into(),
            fstype: fstype.into(),
            options: sim_kernel::vfs::MountOptions::parse(opts),
        }
    }

    fn user_cred() -> Credentials {
        Credentials::user(Uid(1000), Gid(1000))
    }

    fn ctx(cred: &Credentials, authed: Option<AuthScope>) -> SetidCtx<'_> {
        SetidCtx {
            cred,
            binary: "/usr/bin/sudo",
            last_auth: authed.map(|_| 1000),
            last_auth_scope: authed,
            now: 1100,
        }
    }

    #[test]
    fn mount_whitelist_grants_matching_request() {
        let lsm = lsm_with(cdrom_policy());
        let d = lsm.sb_mount(
            &user_cred(),
            &mount_req("/dev/cdrom", "/mnt/cdrom", "iso9660", "ro"),
        );
        assert_eq!(d, Decision::Allow);
    }

    #[test]
    fn mount_whitelist_rejects_rw_when_ro_required() {
        let lsm = lsm_with(cdrom_policy());
        let d = lsm.sb_mount(
            &user_cred(),
            &mount_req("/dev/cdrom", "/mnt/cdrom", "iso9660", "rw"),
        );
        assert_eq!(d, Decision::Deny(Errno::EACCES));
    }

    #[test]
    fn mount_off_whitelist_falls_to_default() {
        let lsm = lsm_with(cdrom_policy());
        // Wrong mountpoint — the attack the paper highlights (mounting
        // over /etc).
        let d = lsm.sb_mount(
            &user_cred(),
            &mount_req("/dev/cdrom", "/etc", "iso9660", "ro"),
        );
        assert_eq!(d, Decision::UseDefault);
        // Wrong device.
        let d = lsm.sb_mount(
            &user_cred(),
            &mount_req("/dev/sda1", "/mnt/cdrom", "iso9660", "ro"),
        );
        assert_eq!(d, Decision::UseDefault);
    }

    #[test]
    fn root_mount_path_unchanged() {
        let lsm = lsm_with(cdrom_policy());
        let d = lsm.sb_mount(
            &Credentials::root(),
            &mount_req("/dev/cdrom", "/mnt/cdrom", "iso9660", "ro"),
        );
        assert_eq!(d, Decision::UseDefault);
    }

    #[test]
    fn umount_user_scope_restricted_to_mounter() {
        let lsm = lsm_with(cdrom_policy());
        let req = UmountRequest {
            target: "/mnt/cdrom".into(),
            source: "/dev/cdrom".into(),
            fstype: "iso9660".into(),
            mounted_by: Uid(1000),
        };
        assert_eq!(lsm.sb_umount(&user_cred(), &req), Decision::Allow);
        let other = Credentials::user(Uid(1001), Gid(1001));
        assert_eq!(lsm.sb_umount(&other, &req), Decision::Deny(Errno::EPERM));
    }

    #[test]
    fn bind_rule_is_exclusive_even_for_root() {
        let mut p = PolicySet::default();
        p.binds.push(BindRule {
            port: 25,
            tcp: true,
            binary: "/usr/sbin/exim4".into(),
            uid: 0,
        });
        let lsm = lsm_with(p);
        let good = BindRequest {
            port: 25,
            binary: "/usr/sbin/exim4".into(),
            tcp: true,
        };
        assert_eq!(
            lsm.socket_bind(&Credentials::root(), &good),
            Decision::Allow
        );
        let rogue = BindRequest {
            port: 25,
            binary: "/usr/sbin/httpd".into(),
            tcp: true,
        };
        assert_eq!(
            lsm.socket_bind(&Credentials::root(), &rogue),
            Decision::Deny(Errno::EACCES)
        );
    }

    #[test]
    fn sudo_rule_needs_auth_then_allows() {
        let mut p = PolicySet::default();
        p.sudo.push(SudoRule {
            from: Principal::Uid(1000),
            target: Target::Uid(0),
            cmd: CmdSpec::Any,
            auth: AuthReq::Invoker,
            keep_env: vec![],
        });
        let lsm = lsm_with(p);
        // Not authenticated yet -> kernel must launch the auth agent.
        let alice = user_cred();
        let d = lsm.task_setuid(&ctx(&alice, None), Uid::ROOT);
        assert_eq!(d, SetuidDecision::NeedAuth(AuthScope::User(Uid(1000))));
        // Recently authenticated -> allowed.
        let d = lsm.task_setuid(&ctx(&alice, Some(AuthScope::User(Uid(1000)))), Uid::ROOT);
        assert_eq!(d, SetuidDecision::Allow);
    }

    #[test]
    fn stale_auth_requires_reprompt() {
        let mut p = PolicySet::default();
        p.sudo.push(SudoRule {
            from: Principal::Uid(1000),
            target: Target::Uid(0),
            cmd: CmdSpec::Any,
            auth: AuthReq::Invoker,
            keep_env: vec![],
        });
        let lsm = lsm_with(p);
        let alice = user_cred();
        let mut c = ctx(&alice, Some(AuthScope::User(Uid(1000))));
        c.now = c.last_auth.unwrap() + AUTH_WINDOW + 1;
        assert!(matches!(
            lsm.task_setuid(&c, Uid::ROOT),
            SetuidDecision::NeedAuth(_)
        ));
    }

    #[test]
    fn command_restricted_rule_goes_pending() {
        let mut p = PolicySet::default();
        p.sudo.push(SudoRule {
            from: Principal::Uid(1001),
            target: Target::Uid(1000),
            cmd: CmdSpec::List(vec!["/usr/bin/lpr".into()]),
            auth: AuthReq::None,
            keep_env: vec!["PRINTER".into()],
        });
        let lsm = lsm_with(p);
        let bob = Credentials::user(Uid(1001), Gid(1001));
        match lsm.task_setuid(&ctx(&bob, None), Uid(1000)) {
            SetuidDecision::Pending(pend) => {
                assert_eq!(pend.target, Uid(1000));
                assert_eq!(pend.allowed_binaries, vec!["/usr/bin/lpr".to_string()]);
                assert_eq!(pend.keep_env, vec!["PRINTER".to_string()]);
            }
            other => panic!("expected pending, got {:?}", other),
        }
    }

    #[test]
    fn unrelated_user_gets_default_eperm_path() {
        let mut p = PolicySet::default();
        p.sudo.push(SudoRule {
            from: Principal::Uid(1000),
            target: Target::Uid(0),
            cmd: CmdSpec::Any,
            auth: AuthReq::Invoker,
            keep_env: vec![],
        });
        let lsm = lsm_with(p);
        let charlie = Credentials::user(Uid(1002), Gid(1002));
        assert_eq!(
            lsm.task_setuid(&ctx(&charlie, None), Uid::ROOT),
            SetuidDecision::UseDefault
        );
    }

    #[test]
    fn group_rule_matches_membership() {
        let mut p = PolicySet::default();
        p.sudo.push(SudoRule {
            from: Principal::Gid(27),
            target: Target::Any,
            cmd: CmdSpec::Any,
            auth: AuthReq::None,
            keep_env: vec![],
        });
        let lsm = lsm_with(p);
        let mut admin = Credentials::user(Uid(1003), Gid(1003));
        admin.groups.push(Gid(27));
        assert_eq!(
            lsm.task_setuid(&ctx(&admin, None), Uid::ROOT),
            SetuidDecision::Allow
        );
    }

    #[test]
    fn su_rule_requires_target_password() {
        let mut p = PolicySet::default();
        p.sudo.push(SudoRule::su_rule());
        let lsm = lsm_with(p);
        let alice = user_cred();
        let d = lsm.task_setuid(&ctx(&alice, None), Uid(1001));
        assert_eq!(d, SetuidDecision::NeedAuth(AuthScope::User(Uid(1001))));
        // Proving the *wrong* (own) password is not enough.
        let d = lsm.task_setuid(&ctx(&alice, Some(AuthScope::User(Uid(1000)))), Uid(1001));
        assert_eq!(d, SetuidDecision::NeedAuth(AuthScope::User(Uid(1001))));
        // Target's password proven -> allowed.
        let d = lsm.task_setuid(&ctx(&alice, Some(AuthScope::User(Uid(1001)))), Uid(1001));
        assert_eq!(d, SetuidDecision::Allow);
    }

    #[test]
    fn newgrp_member_allowed_nonmember_needs_group_password() {
        let mut p = PolicySet::default();
        p.groups.push(GroupRule {
            gid: 101,
            password_protected: true,
        });
        let lsm = lsm_with(p);
        let mut member = user_cred();
        member.groups.push(Gid(101));
        assert_eq!(
            lsm.task_setgid(&ctx(&member, None), Gid(101)),
            SetuidDecision::Allow
        );
        let stranger = Credentials::user(Uid(1004), Gid(1004));
        assert_eq!(
            lsm.task_setgid(&ctx(&stranger, None), Gid(101)),
            SetuidDecision::NeedAuth(AuthScope::Group(Gid(101)))
        );
        assert_eq!(
            lsm.task_setgid(&ctx(&stranger, Some(AuthScope::Group(Gid(101)))), Gid(101)),
            SetuidDecision::Allow
        );
    }

    #[test]
    fn unprotected_group_falls_to_default() {
        let lsm = lsm_with(PolicySet::default());
        let stranger = Credentials::user(Uid(1004), Gid(1004));
        assert_eq!(
            lsm.task_setgid(&ctx(&stranger, None), Gid(101)),
            SetuidDecision::UseDefault
        );
    }

    #[test]
    fn pending_resolution_at_exec() {
        let lsm = lsm_with(PolicySet::default());
        let pend = PendingSetuid {
            target: Uid(1000),
            allowed_binaries: vec!["/usr/bin/lpr".into()],
            require_target_auth: false,
            keep_env: vec!["PRINTER".into()],
        };
        let mk = |binary: &str| ExecCtx {
            cred: Credentials::user(Uid(1001), Gid(1001)),
            binary: binary.into(),
            file_owner: Uid::ROOT,
            file_group: Gid::ROOT,
            setuid_bit: false,
            setgid_bit: false,
            pending: Some(pend.clone()),
            last_auth: None,
            last_auth_scope: None,
            now: 0,
        };
        match lsm.bprm_check(&mk("/usr/bin/lpr")) {
            ExecDecision::Transition { cred, env } => {
                assert_eq!(cred.euid, Uid(1000));
                assert_eq!(cred.ruid, Uid(1000));
                assert!(cred.caps.is_empty());
                assert_eq!(env, EnvPolicy::ClearExcept(vec!["PRINTER".into()]));
            }
            other => panic!("expected transition, got {:?}", other),
        }
        // Any other binary: permission denied at exec (§4.3).
        assert_eq!(
            lsm.bprm_check(&mk("/bin/sh")),
            ExecDecision::Deny(Errno::EACCES)
        );
    }

    #[test]
    fn pending_to_root_grants_full_caps_only_at_exec() {
        let lsm = lsm_with(PolicySet::default());
        let c = ExecCtx {
            cred: Credentials::user(Uid(1000), Gid(1000)),
            binary: "/usr/bin/apt".into(),
            file_owner: Uid::ROOT,
            file_group: Gid::ROOT,
            setuid_bit: false,
            setgid_bit: false,
            pending: Some(PendingSetuid {
                target: Uid::ROOT,
                allowed_binaries: vec!["/usr/bin/apt".into()],
                require_target_auth: false,
                keep_env: vec![],
            }),
            last_auth: None,
            last_auth_scope: None,
            now: 0,
        };
        match lsm.bprm_check(&c) {
            ExecDecision::Transition { cred, .. } => {
                assert!(cred.euid.is_root());
                assert!(cred.has_cap(Cap::SysAdmin));
            }
            other => panic!("expected transition, got {:?}", other),
        }
    }

    #[test]
    fn route_policy_non_conflicting_only() {
        let mut p = PolicySet::default();
        p.ppp.user_routes = true;
        let lsm = lsm_with(p);
        let mut table = RouteTable::new();
        table
            .add(Route {
                dest: sim_kernel::net::Ipv4::new(10, 0, 0, 0),
                prefix: 8,
                gateway: None,
                dev: "eth0".into(),
                created_by: Uid::ROOT,
            })
            .unwrap();
        let fresh = Route {
            dest: sim_kernel::net::Ipv4::new(192, 168, 9, 0),
            prefix: 24,
            gateway: None,
            dev: "ppp0".into(),
            created_by: Uid(1000),
        };
        assert_eq!(
            lsm.ioctl_route_add(&user_cred(), &fresh, &table),
            Decision::Allow
        );
        let conflicting = Route {
            dest: sim_kernel::net::Ipv4::new(10, 5, 0, 0),
            prefix: 16,
            gateway: None,
            dev: "ppp0".into(),
            created_by: Uid(1000),
        };
        assert_eq!(
            lsm.ioctl_route_add(&user_cred(), &conflicting, &table),
            Decision::Deny(Errno::EEXIST)
        );
    }

    #[test]
    fn route_policy_disabled_falls_to_default() {
        let lsm = lsm_with(PolicySet::default());
        let table = RouteTable::new();
        let r = Route {
            dest: sim_kernel::net::Ipv4::new(192, 168, 9, 0),
            prefix: 24,
            gateway: None,
            dev: "ppp0".into(),
            created_by: Uid(1000),
        };
        assert_eq!(
            lsm.ioctl_route_add(&user_cred(), &r, &table),
            Decision::UseDefault
        );
    }

    #[test]
    fn modem_safe_opts_for_users() {
        let mut p = PolicySet::default();
        p.ppp.safe_modem_opts = true;
        let lsm = lsm_with(p);
        let state = ModemState::default();
        assert_eq!(
            lsm.ioctl_modem(&user_cred(), ModemOpt::Baud(57600), &state),
            Decision::Allow
        );
        assert_eq!(
            lsm.ioctl_modem(&user_cred(), ModemOpt::HardwareReset, &state),
            Decision::UseDefault
        );
    }

    #[test]
    fn keyfile_binary_identity() {
        let mut p = PolicySet::default();
        p.keyfiles.push(KeyFileRule {
            path: "/etc/ssh/ssh_host_key".into(),
            binary: "/usr/lib/ssh-keysign".into(),
        });
        let lsm = lsm_with(p);
        fn mk<'a>(binary: &'a str, cred: &'a Credentials, access: Access) -> FileOpenCtx<'a> {
            FileOpenCtx {
                cred,
                path: "/etc/ssh/ssh_host_key",
                binary,
                access,
                dac_allows: false,
                file_owner: Uid::ROOT,
                last_auth: None,
                last_auth_scope: None,
                now: 0,
            }
        }
        // The named binary reads the key even as an unprivileged user.
        assert_eq!(
            lsm.file_open(&mk("/usr/lib/ssh-keysign", &user_cred(), Access::READ)),
            FileDecision::AllowCloexec
        );
        // Any other binary is refused, even running as root.
        assert_eq!(
            lsm.file_open(&mk("/bin/cat", &Credentials::root(), Access::READ)),
            FileDecision::Deny(Errno::EACCES)
        );
        // Writes are never granted through the keyfile rule.
        assert_eq!(
            lsm.file_open(&mk("/usr/lib/ssh-keysign", &user_cred(), Access::WRITE)),
            FileDecision::Deny(Errno::EACCES)
        );
    }

    #[test]
    fn shadow_fragment_requires_fresh_auth_and_cloexec() {
        let mut p = PolicySet::default();
        p.creddb.shadow_prefixes.push("/etc/shadows/".into());
        let lsm = lsm_with(p);
        let user = user_cred();
        let mk = |authed: Option<AuthScope>, now: u64| FileOpenCtx {
            cred: &user,
            path: "/etc/shadows/alice",
            binary: "/usr/bin/passwd",
            access: Access::READ,
            dac_allows: true,
            file_owner: Uid(1000),
            last_auth: authed.map(|_| 1000),
            last_auth_scope: authed,
            now,
        };
        assert_eq!(
            lsm.file_open(&mk(None, 1100)),
            FileDecision::NeedAuth(AuthScope::User(Uid(1000)))
        );
        assert_eq!(
            lsm.file_open(&mk(Some(AuthScope::User(Uid(1000))), 1100)),
            FileDecision::AllowCloexec
        );
        // Stale authentication is not enough.
        assert_eq!(
            lsm.file_open(&mk(
                Some(AuthScope::User(Uid(1000))),
                1000 + AUTH_WINDOW + 1
            )),
            FileDecision::NeedAuth(AuthScope::User(Uid(1000)))
        );
    }

    #[test]
    fn shadow_fragment_of_other_user_stays_dac_denied() {
        let mut p = PolicySet::default();
        p.creddb.shadow_prefixes.push("/etc/shadows/".into());
        let lsm = lsm_with(p);
        let user = user_cred();
        let c = FileOpenCtx {
            cred: &user,
            path: "/etc/shadows/bob",
            binary: "/usr/bin/passwd",
            access: Access::READ,
            dac_allows: false,
            file_owner: Uid(1001),
            last_auth: Some(1000),
            last_auth_scope: Some(AuthScope::User(Uid(1000))),
            now: 1001,
        };
        assert_eq!(lsm.file_open(&c), FileDecision::UseDefault);
    }

    #[test]
    fn keyfile_cache_hits_and_policy_write_invalidates() {
        let mut p = PolicySet::default();
        p.keyfiles.push(KeyFileRule {
            path: "/etc/ssh/ssh_host_key".into(),
            binary: "/usr/lib/ssh-keysign".into(),
        });
        let mut lsm = lsm_with(p);
        let user = user_cred();
        let mk = || FileOpenCtx {
            cred: &user,
            path: "/etc/ssh/ssh_host_key",
            binary: "/usr/lib/ssh-keysign",
            access: Access::READ,
            dac_allows: false,
            file_owner: Uid::ROOT,
            last_auth: None,
            last_auth_scope: None,
            now: 0,
        };
        assert_eq!(lsm.file_open(&mk()), FileDecision::AllowCloexec);
        assert_eq!(lsm.file_open(&mk()), FileDecision::AllowCloexec);
        // Provenance must still be recorded on the cached (second) hit.
        assert!(lsm.take_matched_rule().is_some());
        let s = lsm.keyfile_cache_stats();
        assert_eq!(s.hits, 1);
        assert!(s.misses >= 1);
        // A policy write drops the cache and the new rules take effect.
        lsm.config_write("keyfiles", "").unwrap();
        assert_eq!(lsm.keyfile_cache_stats().invalidations, 1);
        assert_eq!(lsm.file_open(&mk()), FileDecision::UseDefault);
    }

    #[test]
    fn config_roundtrip_through_module() {
        let mut lsm = ProtegoLsm::new();
        lsm.config_write("mounts", "/dev/cdrom /mnt/cdrom iso9660 user ro\n")
            .unwrap();
        assert_eq!(lsm.policy().mounts.len(), 1);
        assert_eq!(
            lsm.config_read("mounts").unwrap(),
            "/dev/cdrom /mnt/cdrom iso9660 user ro\n"
        );
        assert_eq!(lsm.config_write("bogus", "").unwrap_err(), Errno::ENOENT);
        assert_eq!(
            lsm.config_write("bind", "not a rule").unwrap_err(),
            Errno::EINVAL
        );
    }

    #[test]
    fn default_raw_rules_shape() {
        let rules = ProtegoLsm::default_raw_rules();
        assert_eq!(rules.len(), 5);
        assert_eq!(rules[0].name, "protego-no-spoof");
        assert!(rules.iter().all(|r| r.raw_socket_only));
        assert_eq!(rules.last().unwrap().verdict, Verdict::Drop);
    }

    #[test]
    fn bind_would_allow_helper() {
        let mut p = PolicySet::default();
        p.binds.push(BindRule {
            port: 25,
            tcp: true,
            binary: "/usr/sbin/exim4".into(),
            uid: 8,
        });
        assert!(bind_would_allow(&p, 25, true, "/usr/sbin/exim4", 8));
        assert!(!bind_would_allow(&p, 25, true, "/usr/sbin/exim4", 0));
        assert!(!bind_would_allow(&p, 25, true, "/usr/sbin/httpd", 8));
        assert!(!bind_would_allow(&p, 25, false, "/usr/sbin/exim4", 8));
        assert!(!bind_would_allow(&p, 26, true, "/usr/sbin/exim4", 8));
    }

    #[test]
    fn matched_rule_is_recorded_and_drained() {
        let lsm = lsm_with(cdrom_policy());
        assert_eq!(lsm.take_matched_rule(), None);
        let d = lsm.sb_mount(
            &user_cred(),
            &mount_req("/dev/cdrom", "/mnt/cdrom", "iso9660", "ro"),
        );
        assert_eq!(d, Decision::Allow);
        let rule = lsm.take_matched_rule().expect("rule recorded");
        assert_eq!(rule, "mounts:/dev/cdrom->/mnt/cdrom");
        // Drained: a second take yields nothing.
        assert_eq!(lsm.take_matched_rule(), None);
        // Off-whitelist requests record no rule.
        let _ = lsm.sb_mount(
            &user_cred(),
            &mount_req("/dev/sda1", "/etc", "iso9660", "ro"),
        );
        assert_eq!(lsm.take_matched_rule(), None);
    }

    #[test]
    fn describe_access_names() {
        assert_eq!(describe_access(Access::READ), "read");
        assert_eq!(describe_access(Access::WRITE), "write");
        assert_eq!(
            describe_access(Access::READ.and(Access::WRITE)),
            "read-write"
        );
        assert_eq!(describe_access(Access::EXEC), "exec");
        assert_eq!(describe_access(Access(0)), "none");
    }
}
