//! Kernel-side policy structures and the `/proc/protego/*` grammar.
//!
//! The Protego LSM is configured through plain-text files under
//! `/proc/protego/` (Figure 1): either directly by the administrator or by
//! the trusted monitoring daemon that mirrors legacy configuration files
//! (`/etc/fstab`, `/etc/sudoers`, ...). The kernel grammar is *numeric*
//! (uids/gids, resolved paths); translating human-readable names is
//! userland's job — exactly the split the paper's prototype uses.

use sim_kernel::error::{Errno, KResult};

/// Who may operate on a whitelisted mountpoint (the fstab `user` vs
/// `users` options).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MountScope {
    /// `user`: any user may mount; only the mounting user may unmount.
    User,
    /// `users`: any user may mount or unmount.
    Users,
}

/// One entry of the kernel mount whitelist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MountRule {
    /// Required source device.
    pub source: String,
    /// Required mountpoint.
    pub mountpoint: String,
    /// Required filesystem type (`None` = any).
    pub fstype: Option<String>,
    /// Scope of the grant.
    pub scope: MountScope,
    /// If set, the mount must be read-only.
    pub read_only: bool,
}

/// One entry of the privileged-port map (`/etc/bind`, §4.1.3): the paper's
/// application instance is the (binary path, uid) pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BindRule {
    /// Privileged port number (<1024).
    pub port: u16,
    /// True for TCP, false for UDP.
    pub tcp: bool,
    /// Absolute binary path.
    pub binary: String,
    /// Required uid.
    pub uid: u32,
}

/// Subject selector of a delegation rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Principal {
    /// A specific user.
    Uid(u32),
    /// Members of a group (sudoers `%group`).
    Gid(u32),
    /// Anyone.
    Any,
}

/// Target selector of a delegation rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// A specific user.
    Uid(u32),
    /// Any user (sudoers `(ALL)`).
    Any,
}

/// Commands a delegation covers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CmdSpec {
    /// Any binary (sudoers `ALL`).
    Any,
    /// Only these absolute paths.
    List(Vec<String>),
}

/// Whose password must be proven, and when.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuthReq {
    /// The invoking user authenticates (sudo semantics), subject to the
    /// kernel recency window.
    Invoker,
    /// The *target* user authenticates (su semantics).
    Target,
    /// No authentication (sudoers `NOPASSWD`).
    None,
}

/// A kernelized delegation rule (§4.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SudoRule {
    /// Who may use the rule.
    pub from: Principal,
    /// Which uid they may become.
    pub target: Target,
    /// Which binaries they may run as that uid.
    pub cmd: CmdSpec,
    /// Authentication requirement.
    pub auth: AuthReq,
    /// Environment variables preserved across the transition.
    pub keep_env: Vec<String>,
}

impl SudoRule {
    /// The rule Protego installs for `su`: anyone may become any user by
    /// proving the target's password.
    pub fn su_rule() -> SudoRule {
        SudoRule {
            from: Principal::Any,
            target: Target::Any,
            cmd: CmdSpec::Any,
            auth: AuthReq::Target,
            keep_env: Vec::new(),
        }
    }
}

/// A password-protected group (newgrp, §4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupRule {
    /// The group id.
    pub gid: u32,
    /// Whether non-members may join by proving the group password.
    pub password_protected: bool,
}

/// A sensitive file restricted to a specific binary (ssh-keysign, §4.6).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyFileRule {
    /// The protected path.
    pub path: String,
    /// The only binary allowed to open it.
    pub binary: String,
}

/// PPP policy mined from `/etc/ppp/options` (§4.1.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PppPolicy {
    /// Allow unprivileged users to set safe modem options.
    pub safe_modem_opts: bool,
    /// Allow unprivileged users to add non-conflicting routes.
    pub user_routes: bool,
}

/// Credential-database layout policy (§4.4).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CredDbPolicy {
    /// Directory prefixes whose per-user shadow fragments require a fresh
    /// authentication (and CLOEXEC handles) to read.
    pub shadow_prefixes: Vec<String>,
}

/// The full Protego policy state, as configured through `/proc`.
#[derive(Clone, Debug, Default)]
pub struct PolicySet {
    /// Mount whitelist.
    pub mounts: Vec<MountRule>,
    /// Privileged-port map.
    pub binds: Vec<BindRule>,
    /// Delegation rules.
    pub sudo: Vec<SudoRule>,
    /// Password-protected groups.
    pub groups: Vec<GroupRule>,
    /// Binary-identity file grants.
    pub keyfiles: Vec<KeyFileRule>,
    /// PPP policy.
    pub ppp: PppPolicy,
    /// Credential-database policy.
    pub creddb: CredDbPolicy,
}

// ---------------------------------------------------------------------
// Grammar: parse / render, one node per policy category
// ---------------------------------------------------------------------

fn non_comment_lines(text: &str) -> impl Iterator<Item = &str> {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
}

/// Parses the `mounts` node: `<source> <mountpoint> <fstype|*> <user|users> [ro]`.
pub fn parse_mounts(text: &str) -> KResult<Vec<MountRule>> {
    let mut out = Vec::new();
    for line in non_comment_lines(text) {
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() < 4 || f.len() > 5 {
            return Err(Errno::EINVAL);
        }
        let scope = match f[3] {
            "user" => MountScope::User,
            "users" => MountScope::Users,
            _ => return Err(Errno::EINVAL),
        };
        let read_only = match f.get(4) {
            None => false,
            Some(&"ro") => true,
            Some(_) => return Err(Errno::EINVAL),
        };
        // Sources are device paths or pseudo-filesystem names (tmpfs,
        // fuse, proc, ...).
        let pseudo_ok = f[0].chars().all(|c| c.is_ascii_alphanumeric());
        if !f[0].starts_with('/') && !pseudo_ok {
            return Err(Errno::EINVAL);
        }
        if !f[1].starts_with('/') {
            return Err(Errno::EINVAL);
        }
        out.push(MountRule {
            source: f[0].into(),
            mountpoint: f[1].into(),
            fstype: if f[2] == "*" { None } else { Some(f[2].into()) },
            scope,
            read_only,
        });
    }
    Ok(out)
}

/// Renders the `mounts` node.
pub fn render_mounts(rules: &[MountRule]) -> String {
    rules
        .iter()
        .map(|r| {
            format!(
                "{} {} {} {}{}\n",
                r.source,
                r.mountpoint,
                r.fstype.as_deref().unwrap_or("*"),
                match r.scope {
                    MountScope::User => "user",
                    MountScope::Users => "users",
                },
                if r.read_only { " ro" } else { "" }
            )
        })
        .collect()
}

/// Parses the `bind` node: `<port> <tcp|udp> <binary> <uid>`.
pub fn parse_binds(text: &str) -> KResult<Vec<BindRule>> {
    let mut out: Vec<BindRule> = Vec::new();
    for line in non_comment_lines(text) {
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() != 4 {
            return Err(Errno::EINVAL);
        }
        let port: u16 = f[0].parse().map_err(|_| Errno::EINVAL)?;
        if port == 0 || port >= 1024 {
            return Err(Errno::EINVAL);
        }
        let tcp = match f[1] {
            "tcp" => true,
            "udp" => false,
            _ => return Err(Errno::EINVAL),
        };
        if !f[2].starts_with('/') {
            return Err(Errno::EINVAL);
        }
        let uid: u32 = f[3].parse().map_err(|_| Errno::EINVAL)?;
        // Each port maps to exactly one application instance (§4.1.3).
        if out.iter().any(|r| r.port == port && r.tcp == tcp) {
            return Err(Errno::EEXIST);
        }
        out.push(BindRule {
            port,
            tcp,
            binary: f[2].into(),
            uid,
        });
    }
    Ok(out)
}

/// Renders the `bind` node.
pub fn render_binds(rules: &[BindRule]) -> String {
    rules
        .iter()
        .map(|r| {
            format!(
                "{} {} {} {}\n",
                r.port,
                if r.tcp { "tcp" } else { "udp" },
                r.binary,
                r.uid
            )
        })
        .collect()
}

/// Parses the `sudoers` node:
/// `from=<uid:N|gid:N|any> target=<N|any> cmd=<p1[,p2]|any> auth=<invoker|target|none> keepenv=<A,B|->`.
pub fn parse_sudo(text: &str) -> KResult<Vec<SudoRule>> {
    let mut out = Vec::new();
    for line in non_comment_lines(text) {
        let mut from = None;
        let mut target = None;
        let mut cmd = None;
        let mut auth = None;
        let mut keep_env = Vec::new();
        for tok in line.split_whitespace() {
            let (k, v) = tok.split_once('=').ok_or(Errno::EINVAL)?;
            match k {
                "from" => {
                    from = Some(if v == "any" {
                        Principal::Any
                    } else if let Some(n) = v.strip_prefix("uid:") {
                        Principal::Uid(n.parse().map_err(|_| Errno::EINVAL)?)
                    } else if let Some(n) = v.strip_prefix("gid:") {
                        Principal::Gid(n.parse().map_err(|_| Errno::EINVAL)?)
                    } else {
                        return Err(Errno::EINVAL);
                    });
                }
                "target" => {
                    target = Some(if v == "any" {
                        Target::Any
                    } else {
                        Target::Uid(v.parse().map_err(|_| Errno::EINVAL)?)
                    });
                }
                "cmd" => {
                    cmd = Some(if v == "any" {
                        CmdSpec::Any
                    } else {
                        let paths: Vec<String> = v.split(',').map(String::from).collect();
                        if paths.iter().any(|p| !p.starts_with('/')) {
                            return Err(Errno::EINVAL);
                        }
                        CmdSpec::List(paths)
                    });
                }
                "auth" => {
                    auth = Some(match v {
                        "invoker" => AuthReq::Invoker,
                        "target" => AuthReq::Target,
                        "none" => AuthReq::None,
                        _ => return Err(Errno::EINVAL),
                    });
                }
                "keepenv" => {
                    if v != "-" {
                        keep_env = v.split(',').map(String::from).collect();
                    }
                }
                _ => return Err(Errno::EINVAL),
            }
        }
        out.push(SudoRule {
            from: from.ok_or(Errno::EINVAL)?,
            target: target.ok_or(Errno::EINVAL)?,
            cmd: cmd.ok_or(Errno::EINVAL)?,
            auth: auth.unwrap_or(AuthReq::Invoker),
            keep_env,
        });
    }
    Ok(out)
}

/// Renders the `sudoers` node.
pub fn render_sudo(rules: &[SudoRule]) -> String {
    rules
        .iter()
        .map(|r| {
            let from = match r.from {
                Principal::Uid(u) => format!("uid:{}", u),
                Principal::Gid(g) => format!("gid:{}", g),
                Principal::Any => "any".into(),
            };
            let target = match r.target {
                Target::Uid(u) => u.to_string(),
                Target::Any => "any".into(),
            };
            let cmd = match &r.cmd {
                CmdSpec::Any => "any".into(),
                CmdSpec::List(l) => l.join(","),
            };
            let auth = match r.auth {
                AuthReq::Invoker => "invoker",
                AuthReq::Target => "target",
                AuthReq::None => "none",
            };
            let keepenv = if r.keep_env.is_empty() {
                "-".into()
            } else {
                r.keep_env.join(",")
            };
            format!(
                "from={} target={} cmd={} auth={} keepenv={}\n",
                from, target, cmd, auth, keepenv
            )
        })
        .collect()
}

/// Parses the `groups` node: `<gid> <password|open>`.
pub fn parse_groups(text: &str) -> KResult<Vec<GroupRule>> {
    let mut out = Vec::new();
    for line in non_comment_lines(text) {
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() != 2 {
            return Err(Errno::EINVAL);
        }
        let gid: u32 = f[0].parse().map_err(|_| Errno::EINVAL)?;
        let password_protected = match f[1] {
            "password" => true,
            "open" => false,
            _ => return Err(Errno::EINVAL),
        };
        out.push(GroupRule {
            gid,
            password_protected,
        });
    }
    Ok(out)
}

/// Renders the `groups` node.
pub fn render_groups(rules: &[GroupRule]) -> String {
    rules
        .iter()
        .map(|r| {
            format!(
                "{} {}\n",
                r.gid,
                if r.password_protected {
                    "password"
                } else {
                    "open"
                }
            )
        })
        .collect()
}

/// Parses the `keyfiles` node: `<path> <binary>`.
pub fn parse_keyfiles(text: &str) -> KResult<Vec<KeyFileRule>> {
    let mut out = Vec::new();
    for line in non_comment_lines(text) {
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() != 2 || !f[0].starts_with('/') || !f[1].starts_with('/') {
            return Err(Errno::EINVAL);
        }
        out.push(KeyFileRule {
            path: f[0].into(),
            binary: f[1].into(),
        });
    }
    Ok(out)
}

/// Renders the `keyfiles` node.
pub fn render_keyfiles(rules: &[KeyFileRule]) -> String {
    rules
        .iter()
        .map(|r| format!("{} {}\n", r.path, r.binary))
        .collect()
}

/// Parses the `ppp` node: `safe-modem-opts <on|off>` / `user-routes <on|off>`.
pub fn parse_ppp(text: &str) -> KResult<PppPolicy> {
    let mut p = PppPolicy::default();
    for line in non_comment_lines(text) {
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() != 2 {
            return Err(Errno::EINVAL);
        }
        let on = match f[1] {
            "on" => true,
            "off" => false,
            _ => return Err(Errno::EINVAL),
        };
        match f[0] {
            "safe-modem-opts" => p.safe_modem_opts = on,
            "user-routes" => p.user_routes = on,
            _ => return Err(Errno::EINVAL),
        }
    }
    Ok(p)
}

/// Renders the `ppp` node.
pub fn render_ppp(p: &PppPolicy) -> String {
    format!(
        "safe-modem-opts {}\nuser-routes {}\n",
        if p.safe_modem_opts { "on" } else { "off" },
        if p.user_routes { "on" } else { "off" }
    )
}

/// Parses the `creddb` node: `shadow-prefix <path/>` lines.
pub fn parse_creddb(text: &str) -> KResult<CredDbPolicy> {
    let mut p = CredDbPolicy::default();
    for line in non_comment_lines(text) {
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() != 2 || f[0] != "shadow-prefix" || !f[1].starts_with('/') {
            return Err(Errno::EINVAL);
        }
        p.shadow_prefixes.push(f[1].into());
    }
    Ok(p)
}

/// Renders the `creddb` node.
pub fn render_creddb(p: &CredDbPolicy) -> String {
    p.shadow_prefixes
        .iter()
        .map(|s| format!("shadow-prefix {}\n", s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mounts_roundtrip() {
        let text = "/dev/cdrom /mnt/cdrom iso9660 user ro\n/dev/sdb1 /media/usb * users\n";
        let rules = parse_mounts(text).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].scope, MountScope::User);
        assert!(rules[0].read_only);
        assert_eq!(rules[1].fstype, None);
        assert_eq!(render_mounts(&rules), text);
    }

    #[test]
    fn mounts_reject_garbage() {
        assert_eq!(parse_mounts("one two").unwrap_err(), Errno::EINVAL);
        assert_eq!(
            parse_mounts("/d /m iso9660 sometimes").unwrap_err(),
            Errno::EINVAL
        );
        // Pseudo-fs names (tmpfs, fuse) pass; path-ish relative sources
        // do not.
        assert!(parse_mounts("fuse /m fuse user").is_ok());
        assert_eq!(
            parse_mounts("../etc /m iso9660 user").unwrap_err(),
            Errno::EINVAL
        );
        assert!(parse_mounts("# comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn binds_roundtrip_and_exclusivity() {
        let text = "25 tcp /usr/sbin/exim4 0\n80 tcp /usr/sbin/httpd 33\n";
        let rules = parse_binds(text).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(render_binds(&rules), text);
        // One port, one instance.
        assert_eq!(
            parse_binds("25 tcp /a 0\n25 tcp /b 1\n").unwrap_err(),
            Errno::EEXIST
        );
        // Same port number on UDP is a different key.
        assert!(parse_binds("53 tcp /a 0\n53 udp /a 0\n").is_ok());
    }

    #[test]
    fn binds_validate_range() {
        assert_eq!(parse_binds("1024 tcp /a 0").unwrap_err(), Errno::EINVAL);
        assert_eq!(parse_binds("0 tcp /a 0").unwrap_err(), Errno::EINVAL);
        assert_eq!(parse_binds("25 sctp /a 0").unwrap_err(), Errno::EINVAL);
        assert_eq!(parse_binds("25 tcp relative 0").unwrap_err(), Errno::EINVAL);
    }

    #[test]
    fn sudo_roundtrip() {
        let text = "from=uid:1000 target=0 cmd=any auth=invoker keepenv=-\n\
                    from=uid:1001 target=1000 cmd=/usr/bin/lpr auth=invoker keepenv=PRINTER\n\
                    from=gid:27 target=any cmd=any auth=invoker keepenv=-\n\
                    from=any target=any cmd=any auth=target keepenv=-\n";
        let rules = parse_sudo(text).unwrap();
        assert_eq!(rules.len(), 4);
        assert_eq!(rules[0].from, Principal::Uid(1000));
        assert_eq!(rules[1].cmd, CmdSpec::List(vec!["/usr/bin/lpr".into()]));
        assert_eq!(rules[1].keep_env, vec!["PRINTER".to_string()]);
        assert_eq!(rules[3], SudoRule::su_rule());
        assert_eq!(render_sudo(&rules), text);
    }

    #[test]
    fn sudo_nopasswd() {
        let rules = parse_sudo("from=uid:5 target=0 cmd=/bin/ls auth=none keepenv=-").unwrap();
        assert_eq!(rules[0].auth, AuthReq::None);
    }

    #[test]
    fn sudo_rejects_bad_fields() {
        assert!(parse_sudo("from=bogus target=0 cmd=any").is_err());
        assert!(parse_sudo("from=uid:1 target=zero cmd=any").is_err());
        assert!(parse_sudo("from=uid:1 target=0 cmd=relative").is_err());
        assert!(parse_sudo("from=uid:1 target=0 cmd=any auth=maybe").is_err());
        assert!(parse_sudo("target=0 cmd=any").is_err()); // missing from
    }

    #[test]
    fn groups_roundtrip() {
        let text = "101 password\n24 open\n";
        let rules = parse_groups(text).unwrap();
        assert!(rules[0].password_protected);
        assert!(!rules[1].password_protected);
        assert_eq!(render_groups(&rules), text);
    }

    #[test]
    fn keyfiles_roundtrip() {
        let text = "/etc/ssh/ssh_host_key /usr/lib/ssh-keysign\n";
        let rules = parse_keyfiles(text).unwrap();
        assert_eq!(rules[0].binary, "/usr/lib/ssh-keysign");
        assert_eq!(render_keyfiles(&rules), text);
        assert!(parse_keyfiles("notapath x").is_err());
    }

    #[test]
    fn ppp_roundtrip() {
        let p = parse_ppp("safe-modem-opts on\nuser-routes on\n").unwrap();
        assert!(p.safe_modem_opts && p.user_routes);
        assert_eq!(render_ppp(&p), "safe-modem-opts on\nuser-routes on\n");
        assert!(!parse_ppp("").unwrap().safe_modem_opts);
        assert!(parse_ppp("user-routes sometimes").is_err());
    }

    #[test]
    fn creddb_roundtrip() {
        let p = parse_creddb("shadow-prefix /etc/shadows/\n").unwrap();
        assert_eq!(p.shadow_prefixes, vec!["/etc/shadows/".to_string()]);
        assert_eq!(render_creddb(&p), "shadow-prefix /etc/shadows/\n");
        assert!(parse_creddb("other-key /x").is_err());
    }
}
