//! `/etc/sudoers` parsing and translation into kernel delegation rules.
//!
//! Implements the practically-used subset of the sudoers grammar:
//!
//! ```text
//! Defaults env_keep += "LANG PRINTER"
//! alice   ALL=(ALL) ALL
//! bob     ALL=(alice) /usr/bin/lpr
//! carol   ALL=(root) NOPASSWD: /bin/ls, /usr/bin/stat
//! %admin  ALL=(ALL) ALL
//! ```
//!
//! Names are resolved to numeric ids through a caller-supplied resolver
//! (the monitoring daemon reads the passwd/group databases); the kernel
//! only ever sees numeric rules.

use crate::policy::{AuthReq, CmdSpec, Principal, SudoRule, Target};

/// Resolves user and group names to ids.
pub trait NameResolver {
    /// Uid for a user name.
    fn uid(&self, name: &str) -> Option<u32>;
    /// Gid for a group name.
    fn gid(&self, name: &str) -> Option<u32>;
}

/// A resolver over in-memory tables (used by tests and the daemon).
#[derive(Debug, Default, Clone)]
pub struct MapResolver {
    /// (name, uid) pairs.
    pub users: Vec<(String, u32)>,
    /// (name, gid) pairs.
    pub groups: Vec<(String, u32)>,
}

impl NameResolver for MapResolver {
    fn uid(&self, name: &str) -> Option<u32> {
        self.users.iter().find(|(n, _)| n == name).map(|(_, u)| *u)
    }
    fn gid(&self, name: &str) -> Option<u32> {
        self.groups.iter().find(|(n, _)| n == name).map(|(_, g)| *g)
    }
}

/// A problem found while parsing sudoers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SudoersError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

/// Parses sudoers text into kernel rules. Returns the rules plus any
/// per-line errors (sudo itself refuses to run on a broken sudoers; the
/// monitoring daemon logs errors and keeps the previous kernel policy, so
/// we report rather than fail wholesale).
pub fn parse_sudoers(
    text: &str,
    resolver: &dyn NameResolver,
) -> (Vec<SudoRule>, Vec<SudoersError>) {
    let mut rules = Vec::new();
    let mut errors = Vec::new();
    let mut env_keep: Vec<String> = Vec::new();

    // First pass: Defaults env_keep, which applies to every rule.
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if let Some(rest) = line.strip_prefix("Defaults") {
            let rest = rest.trim();
            if let Some(spec) = rest.strip_prefix("env_keep") {
                let spec = spec.trim_start_matches(['+', '=', ' ']).trim();
                let spec = spec.trim_matches('"');
                env_keep.extend(spec.split_whitespace().map(String::from));
            }
        }
    }

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with("Defaults") || line.starts_with("@include") {
            continue;
        }
        match parse_rule_line(line, resolver, &env_keep) {
            Ok(rule) => rules.push(rule),
            Err(message) => errors.push(SudoersError {
                line: lineno,
                message,
            }),
        }
    }
    (rules, errors)
}

fn parse_rule_line(
    line: &str,
    resolver: &dyn NameResolver,
    env_keep: &[String],
) -> Result<SudoRule, String> {
    // <principal> <host>=(<runas>) [NOPASSWD:] <commands>
    let (who, rest) = line
        .split_once(char::is_whitespace)
        .ok_or_else(|| "missing host specification".to_string())?;
    let rest = rest.trim();

    let from = if let Some(group) = who.strip_prefix('%') {
        Principal::Gid(
            resolver
                .gid(group)
                .ok_or_else(|| format!("unknown group '{}'", group))?,
        )
    } else if who == "ALL" {
        Principal::Any
    } else {
        Principal::Uid(
            resolver
                .uid(who)
                .ok_or_else(|| format!("unknown user '{}'", who))?,
        )
    };

    let (host, rest) = rest
        .split_once('=')
        .ok_or_else(|| "missing '=' after host".to_string())?;
    if host.trim() != "ALL" {
        return Err(format!("unsupported host spec '{}'", host.trim()));
    }
    let rest = rest.trim();

    let (target, rest) = if let Some(r) = rest.strip_prefix('(') {
        let (runas, tail) = r
            .split_once(')')
            .ok_or_else(|| "unterminated runas spec".to_string())?;
        let runas = runas.trim();
        let target = if runas == "ALL" {
            Target::Any
        } else {
            Target::Uid(
                resolver
                    .uid(runas)
                    .ok_or_else(|| format!("unknown runas user '{}'", runas))?,
            )
        };
        (target, tail.trim())
    } else {
        (Target::Uid(0), rest) // implicit root
    };

    let (auth, cmds) = match rest.strip_prefix("NOPASSWD:") {
        Some(tail) => (AuthReq::None, tail.trim()),
        None => (AuthReq::Invoker, rest),
    };

    if cmds.is_empty() {
        return Err("missing command list".to_string());
    }
    let cmd = if cmds == "ALL" {
        CmdSpec::Any
    } else {
        let list: Vec<String> = cmds.split(',').map(|c| c.trim().to_string()).collect();
        for c in &list {
            if !c.starts_with('/') {
                return Err(format!("command '{}' is not an absolute path", c));
            }
        }
        CmdSpec::List(list)
    };

    Ok(SudoRule {
        from,
        target,
        cmd,
        auth,
        keep_env: env_keep.to_vec(),
    })
}

/// The sudoers content shipped in the simulated image: the admin group may
/// do anything as anyone (Ubuntu's default), mirroring the real file.
pub const DEFAULT_SUDOERS: &str = "\
# /etc/sudoers
Defaults env_keep += \"LANG\"
root    ALL=(ALL) ALL
%admin  ALL=(ALL) ALL
";

#[cfg(test)]
mod tests {
    use super::*;

    fn resolver() -> MapResolver {
        MapResolver {
            users: vec![
                ("root".into(), 0),
                ("alice".into(), 1000),
                ("bob".into(), 1001),
                ("carol".into(), 1002),
            ],
            groups: vec![("admin".into(), 27), ("users".into(), 100)],
        }
    }

    #[test]
    fn full_grammar() {
        let text = r#"
Defaults env_keep += "LANG PRINTER"
alice   ALL=(ALL) ALL
bob     ALL=(alice) /usr/bin/lpr
carol   ALL=(root) NOPASSWD: /bin/ls, /usr/bin/stat
%admin  ALL=(ALL) ALL
"#;
        let (rules, errors) = parse_sudoers(text, &resolver());
        assert!(errors.is_empty(), "{:?}", errors);
        assert_eq!(rules.len(), 4);

        assert_eq!(rules[0].from, Principal::Uid(1000));
        assert_eq!(rules[0].target, Target::Any);
        assert_eq!(rules[0].cmd, CmdSpec::Any);
        assert_eq!(rules[0].auth, AuthReq::Invoker);
        assert_eq!(rules[0].keep_env, vec!["LANG", "PRINTER"]);

        assert_eq!(rules[1].from, Principal::Uid(1001));
        assert_eq!(rules[1].target, Target::Uid(1000));
        assert_eq!(rules[1].cmd, CmdSpec::List(vec!["/usr/bin/lpr".into()]));

        assert_eq!(rules[2].auth, AuthReq::None);
        assert_eq!(
            rules[2].cmd,
            CmdSpec::List(vec!["/bin/ls".into(), "/usr/bin/stat".into()])
        );

        assert_eq!(rules[3].from, Principal::Gid(27));
    }

    #[test]
    fn implicit_root_target() {
        let (rules, errors) = parse_sudoers("alice ALL= /usr/bin/apt\n", &resolver());
        assert!(errors.is_empty());
        assert_eq!(rules[0].target, Target::Uid(0));
    }

    #[test]
    fn unknown_names_reported_per_line() {
        let text = "mallory ALL=(ALL) ALL\nalice ALL=(ALL) ALL\n";
        let (rules, errors) = parse_sudoers(text, &resolver());
        assert_eq!(rules.len(), 1);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].line, 1);
        assert!(errors[0].message.contains("mallory"));
    }

    #[test]
    fn relative_command_rejected() {
        let (rules, errors) = parse_sudoers("alice ALL=(ALL) apt-get\n", &resolver());
        assert!(rules.is_empty());
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn default_sudoers_parses() {
        let (rules, errors) = parse_sudoers(DEFAULT_SUDOERS, &resolver());
        assert!(errors.is_empty());
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].keep_env, vec!["LANG"]);
    }

    #[test]
    fn all_principal() {
        let (rules, errors) = parse_sudoers("ALL ALL=(root) /bin/true\n", &resolver());
        assert!(errors.is_empty());
        assert_eq!(rules[0].from, Principal::Any);
    }
}
