//! # protego-core
//!
//! The Protego security module (EuroSys 2014): kernel-enforced,
//! object-based policies that obviate setuid-to-root binaries.
//!
//! The crate provides:
//!
//! * [`ProtegoLsm`] — the LSM implementing every policy category of the
//!   paper's Table 4 over the simulated kernel's hook surface;
//! * [`policy`] — the kernel-side policy structures and the
//!   `/proc/protego/*` configuration grammar;
//! * [`fstab`] and [`sudoers`] — parsers for the legacy configuration
//!   files, plus the translations the trusted monitoring daemon applies
//!   to keep the kernel policy synchronized (Figure 1).
//!
//! # Examples
//!
//! ```
//! use protego_core::ProtegoLsm;
//! use sim_kernel::cred::{Credentials, Uid, Gid};
//! use sim_kernel::kernel::Kernel;
//! use sim_kernel::net::SimNet;
//!
//! let mut k = Kernel::new(SimNet::new());
//! k.install_standard_devices().unwrap();
//! k.register_lsm(Box::new(ProtegoLsm::new())).unwrap();
//! let root = k.spawn_init();
//! k.vfs.mkdir_p("/mnt/cdrom").unwrap();
//!
//! // The administrator (or monitoring daemon) whitelists the cdrom.
//! let fd = k.sys_open(root, "/proc/protego/mounts",
//!     sim_kernel::syscall::OpenFlags::write_only()).unwrap();
//! k.sys_write(root, fd, b"/dev/cdrom /mnt/cdrom iso9660 user ro\n").unwrap();
//! k.sys_close(root, fd).unwrap();
//!
//! // An unprivileged user now mounts it — no setuid binary involved.
//! let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/mount");
//! k.sys_mount(user, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro").unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fstab;
pub mod lsm;
pub mod policy;
pub mod sudoers;

pub use lsm::{ProtegoLsm, AUTH_WINDOW};
pub use policy::PolicySet;
