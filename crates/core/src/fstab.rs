//! `/etc/fstab` parsing and translation into kernel mount rules.
//!
//! On stock Linux the *setuid mount binary* parses fstab and enforces the
//! `user`/`users` options itself (Figure 1, left). Under Protego this
//! parser runs in the trusted monitoring daemon, which translates the
//! user-mountable entries into the kernel whitelist grammar.

use crate::policy::{MountRule, MountScope};

/// A parsed fstab line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FstabEntry {
    /// Device or pseudo-fs source.
    pub device: String,
    /// Mountpoint.
    pub mountpoint: String,
    /// Filesystem type (`auto` = any).
    pub fstype: String,
    /// Raw option list.
    pub options: Vec<String>,
}

impl FstabEntry {
    /// Whether an option is present.
    pub fn has_option(&self, opt: &str) -> bool {
        self.options.iter().any(|o| o == opt)
    }

    /// Whether unprivileged users may mount this entry.
    pub fn user_mountable(&self) -> bool {
        self.has_option("user") || self.has_option("users")
    }

    /// The mount scope, if user-mountable.
    pub fn scope(&self) -> Option<MountScope> {
        if self.has_option("users") {
            Some(MountScope::Users)
        } else if self.has_option("user") {
            Some(MountScope::User)
        } else {
            None
        }
    }
}

/// Parses fstab text. Malformed lines are skipped (as mount does),
/// returned separately for diagnostics.
pub fn parse_fstab(text: &str) -> (Vec<FstabEntry>, Vec<String>) {
    let mut entries = Vec::new();
    let mut bad = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() < 4 {
            bad.push(raw.to_string());
            continue;
        }
        entries.push(FstabEntry {
            device: f[0].to_string(),
            mountpoint: f[1].to_string(),
            fstype: f[2].to_string(),
            options: f[3].split(',').map(String::from).collect(),
        });
    }
    (entries, bad)
}

/// Translates the user-mountable fstab entries into kernel mount rules —
/// the monitoring daemon's core transformation.
pub fn fstab_to_policy(entries: &[FstabEntry]) -> Vec<MountRule> {
    entries
        .iter()
        .filter_map(|e| {
            let scope = e.scope()?;
            Some(MountRule {
                source: e.device.clone(),
                mountpoint: e.mountpoint.clone(),
                fstype: if e.fstype == "auto" {
                    None
                } else {
                    Some(e.fstype.clone())
                },
                scope,
                read_only: e.has_option("ro"),
            })
        })
        .collect()
}

/// A reasonable default fstab for the simulated distribution image.
pub const DEFAULT_FSTAB: &str = "\
# <device>      <mountpoint>  <type>    <options>                  <dump> <pass>
/dev/sda1       /             ext4      errors=remount-ro          0      1
/dev/cdrom      /mnt/cdrom    iso9660   ro,user,noauto             0      0
/dev/sdb1       /media/usb    vfat      rw,users,noauto            0      0
ecryptfs        /home/alice/Private   fuse   rw,user,noauto          0      0
ecryptfs        /home/bob/Private     fuse   rw,user,noauto          0      0
ecryptfs        /home/carol/Private   fuse   rw,user,noauto          0      0
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_default_fstab() {
        let (entries, bad) = parse_fstab(DEFAULT_FSTAB);
        assert_eq!(entries.len(), 6);
        assert!(bad.is_empty());
        assert_eq!(entries[1].device, "/dev/cdrom");
        assert!(entries[1].user_mountable());
        assert!(!entries[0].user_mountable());
    }

    #[test]
    fn policy_translation() {
        let (entries, _) = parse_fstab(DEFAULT_FSTAB);
        let rules = fstab_to_policy(&entries);
        assert_eq!(rules.len(), 5);
        assert_eq!(rules[0].mountpoint, "/mnt/cdrom");
        assert_eq!(rules[0].scope, MountScope::User);
        assert!(rules[0].read_only);
        assert_eq!(rules[1].scope, MountScope::Users);
        assert!(!rules[1].read_only);
    }

    #[test]
    fn auto_fstype_maps_to_wildcard() {
        let (entries, _) = parse_fstab("/dev/x /mnt/x auto user 0 0");
        let rules = fstab_to_policy(&entries);
        assert_eq!(rules[0].fstype, None);
    }

    #[test]
    fn malformed_lines_reported() {
        let (entries, bad) = parse_fstab("too few\n/dev/a /m ext4 rw 0 0\n");
        assert_eq!(entries.len(), 1);
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let (entries, bad) = parse_fstab("# all comments\n\n   \n");
        assert!(entries.is_empty());
        assert!(bad.is_empty());
    }
}
