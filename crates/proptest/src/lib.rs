//! A vendored, zero-dependency stand-in for the `proptest` crate so the
//! workspace builds and tests offline (the real crates-io registry is
//! unreachable in this environment).
//!
//! It implements exactly the subset of the proptest API this workspace's
//! property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` and `boxed`;
//! * [`Just`], [`any`], integer range strategies, tuple strategies;
//! * string strategies from a small regex subset (char classes,
//!   negated classes, literal alternations, `{m,n}` quantifiers, `\PC`);
//! * `prop::collection::{vec, btree_map, btree_set}`;
//! * the `proptest!`, `prop_oneof!`, `prop_assert!` and
//!   `prop_assert_eq!` macros.
//!
//! Generation is driven by a deterministic xorshift RNG seeded from the
//! test's module path and the iteration index, so failures are
//! reproducible run-to-run. There is no shrinking: on failure the seed
//! and iteration are printed and the panic is propagated.

pub mod collection;
pub mod string;
pub mod test_runner;

use test_runner::TestRng;

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value from the RNG stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// A strategy that always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice between several strategies of the same value type
/// (the expansion of `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Arbitrary + any()
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the whole domain of `T` — `any::<T>()`.
pub struct Any<T>(core::marker::PhantomData<T>);

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                (lo + rng.below((hi - lo) as u64) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// String strategies from regex-like patterns
// ---------------------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate(self, rng)
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_impls {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over many generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    |rng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                        $body
                    },
                );
            }
        )*
    };
}

/// Uniform choice between strategies (no weights in the stub).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Asserts inside a property test (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Discards the current case when the assumption fails. The stub cannot
/// resample, so it simply skips the rest of the body via early return.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// The glob import every test file uses: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::string;
    }
}
