//! String generation from the regex subset the workspace's tests use:
//! character classes (`[a-z0-9_.-]`, `[^:\n]`, `[ -~]`), literal
//! alternations (`(iso9660|vfat|ext4|auto)`), quantifiers (`{n}`,
//! `{m,n}`, `?`, `*`, `+`), the printable-any escapes `\PC` and `.`,
//! and plain literal characters.

use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
enum Node {
    Lit(char),
    Class {
        ranges: Vec<(char, char)>,
        negated: bool,
    },
    Alt(Vec<String>),
    AnyPrintable,
}

#[derive(Clone, Debug)]
struct Piece {
    node: Node,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces: Vec<Piece> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '[' => {
                i += 1;
                let mut negated = false;
                if i < chars.len() && chars[i] == '^' {
                    negated = true;
                    i += 1;
                }
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    // A range `a-z` needs a `-` that is neither first nor
                    // last in the class.
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = chars[i + 2];
                        ranges.push((c, hi));
                        i += 3;
                    } else {
                        ranges.push((c, c));
                        i += 1;
                    }
                }
                i += 1; // consume ']'
                pieces.push(Piece {
                    node: Node::Class { ranges, negated },
                    min: 1,
                    max: 1,
                });
            }
            '(' => {
                let mut depth = 1;
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && depth > 0 {
                    match chars[j] {
                        '(' => depth += 1,
                        ')' => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                let inner: String = chars[start..j - 1].iter().collect();
                let branches = inner.split('|').map(|s| s.to_string()).collect();
                pieces.push(Piece {
                    node: Node::Alt(branches),
                    min: 1,
                    max: 1,
                });
                i = j;
            }
            '{' => {
                // Quantifier on the previous piece: {n} or {m,n}.
                let mut j = i + 1;
                while j < chars.len() && chars[j] != '}' {
                    j += 1;
                }
                let spec: String = chars[i + 1..j].iter().collect();
                let (min, max) = if let Some((lo, hi)) = spec.split_once(',') {
                    (
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or(8),
                    )
                } else {
                    let n = spec.trim().parse().unwrap_or(1);
                    (n, n)
                };
                if let Some(last) = pieces.last_mut() {
                    last.min = min;
                    last.max = max;
                }
                i = j + 1;
            }
            '?' => {
                if let Some(last) = pieces.last_mut() {
                    last.min = 0;
                    last.max = 1;
                }
                i += 1;
            }
            '*' => {
                if let Some(last) = pieces.last_mut() {
                    last.min = 0;
                    last.max = 8;
                }
                i += 1;
            }
            '+' => {
                if let Some(last) = pieces.last_mut() {
                    last.min = 1;
                    last.max = 8;
                }
                i += 1;
            }
            '.' => {
                pieces.push(Piece {
                    node: Node::AnyPrintable,
                    min: 1,
                    max: 1,
                });
                i += 1;
            }
            '\\' if i + 1 < chars.len() => {
                i += 1;
                match chars[i] {
                    // `\PC` / `\pC`: (non-)control category — the tests use
                    // it as "any printable char"; we emit printable ASCII.
                    'P' | 'p' => {
                        i += 1; // consume the category letter
                        pieces.push(Piece {
                            node: Node::AnyPrintable,
                            min: 1,
                            max: 1,
                        });
                    }
                    'd' => pieces.push(Piece {
                        node: Node::Class {
                            ranges: vec![('0', '9')],
                            negated: false,
                        },
                        min: 1,
                        max: 1,
                    }),
                    c => pieces.push(Piece {
                        node: Node::Lit(unescape(c)),
                        min: 1,
                        max: 1,
                    }),
                }
                i += 1;
            }
            c => {
                pieces.push(Piece {
                    node: Node::Lit(c),
                    min: 1,
                    max: 1,
                });
                i += 1;
            }
        }
    }
    pieces
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

const PRINTABLE: (char, char) = (' ', '~');

fn sample_class(ranges: &[(char, char)], negated: bool, rng: &mut TestRng) -> char {
    if negated {
        // Rejection-sample from printable ASCII.
        loop {
            let c = (rng.range(PRINTABLE.0 as u64, PRINTABLE.1 as u64) as u8) as char;
            if !ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi) {
                return c;
            }
        }
    }
    let total: u64 = ranges
        .iter()
        .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
        .sum();
    debug_assert!(total > 0, "empty character class");
    let mut pick = rng.below(total);
    for &(lo, hi) in ranges {
        let span = hi as u64 - lo as u64 + 1;
        if pick < span {
            return char::from_u32(lo as u32 + pick as u32).unwrap_or(lo);
        }
        pick -= span;
    }
    unreachable!()
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for p in &pieces {
        let count = if p.min == p.max {
            p.min
        } else {
            rng.range(p.min as u64, p.max as u64) as usize
        };
        for _ in 0..count {
            match &p.node {
                Node::Lit(c) => out.push(*c),
                Node::Class { ranges, negated } => out.push(sample_class(ranges, *negated, rng)),
                Node::Alt(branches) => {
                    let i = rng.below(branches.len() as u64) as usize;
                    out.push_str(&branches[i]);
                }
                Node::AnyPrintable => {
                    out.push((rng.range(PRINTABLE.0 as u64, PRINTABLE.1 as u64) as u8) as char)
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seeded(42)
    }

    #[test]
    fn class_with_quantifier() {
        let mut r = rng();
        for _ in 0..64 {
            let s = generate("[a-z][a-z0-9_.-]{0,12}", &mut r);
            assert!(!s.is_empty() && s.len() <= 13, "{:?}", s);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_.-".contains(c)));
        }
    }

    #[test]
    fn negated_class_excludes() {
        let mut r = rng();
        for _ in 0..64 {
            let s = generate("[^:\\n]{0,30}", &mut r);
            assert!(!s.contains(':') && !s.contains('\n'), "{:?}", s);
        }
    }

    #[test]
    fn alternation_is_one_branch() {
        let mut r = rng();
        for _ in 0..32 {
            let s = generate("(iso9660|vfat|ext4|auto)", &mut r);
            assert!(["iso9660", "vfat", "ext4", "auto"].contains(&s.as_str()));
        }
    }

    #[test]
    fn printable_space_to_tilde() {
        let mut r = rng();
        for _ in 0..64 {
            let s = generate("[ -~]{1,16}", &mut r);
            assert!((1..=16).contains(&s.len()));
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{:?}", s);
        }
    }

    #[test]
    fn pc_escape_is_printable() {
        let mut r = rng();
        let s = generate("\\PC{0,200}", &mut r);
        assert!(s.len() <= 200);
        assert!(s.chars().all(|c| !c.is_control()));
    }
}
