//! Deterministic RNG and the per-test driver loop.

/// Number of generated cases per property test.
pub const ITERATIONS: u32 = 32;

/// A small, fast, deterministic RNG (xorshift64*).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a nonzero-ized seed.
    pub fn seeded(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15 | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Seed for iteration `iter` of the test named `name`.
pub fn seed_for(name: &str, iter: u32) -> u64 {
    let mut z = fnv1a(name) ^ ((iter as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs `body` for [`ITERATIONS`] generated cases; on panic, reports the
/// reproducing seed and re-raises.
pub fn run<F: Fn(&mut TestRng)>(name: &str, body: F) {
    for iter in 0..ITERATIONS {
        let seed = seed_for(name, iter);
        let mut rng = TestRng::seeded(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest(stub): {} failed at iteration {}/{} (seed {:#018x})",
                name, iter, ITERATIONS, seed
            );
            std::panic::resume_unwind(payload);
        }
    }
}
