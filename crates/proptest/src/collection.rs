//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use crate::test_runner::TestRng;
use crate::Strategy;
use std::collections::{BTreeMap, BTreeSet};

/// Accepted size specifications (`0..6`, `1..=4`, or an exact count).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_incl: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo >= self.hi_incl {
            self.lo
        } else {
            rng.range(self.lo as u64, self.hi_incl as u64) as usize
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi_incl: r.end.saturating_sub(1),
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_incl: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_incl: n }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Builds a [`VecStrategy`].
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K::Value, V::Value>`.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

/// Builds a [`BTreeMapStrategy`].
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        let mut m = BTreeMap::new();
        // Key collisions shrink the map; bound the retries so degenerate
        // key domains still terminate.
        let mut attempts = 0;
        while m.len() < n && attempts < 4 * n + 8 {
            m.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        m
    }
}

/// Strategy for `BTreeSet<S::Value>`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Builds a [`BTreeSetStrategy`].
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        let mut s = BTreeSet::new();
        let mut attempts = 0;
        while s.len() < n && attempts < 4 * n + 8 {
            s.insert(self.element.generate(rng));
            attempts += 1;
        }
        s
    }
}
