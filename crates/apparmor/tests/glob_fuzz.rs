//! Property tests for the AppArmor-style glob matcher.

use apparmor_lsm::{glob_match, CompiledGlob};
use proptest::prelude::*;

proptest! {
    /// Total on arbitrary inputs — including adversarial star runs that
    /// would blow up a backtracking matcher.
    #[test]
    fn never_panics(pattern in "[a-z/*?{},]{0,24}", path in "[a-z/.]{0,32}") {
        let _ = glob_match(&pattern, &path);
    }

    /// Worst-case star-heavy patterns complete (DP, not backtracking).
    #[test]
    fn adversarial_stars_terminate(stars in 1usize..12, path in "[ab/]{0,40}") {
        let pattern: String = "*a".repeat(stars);
        let _ = glob_match(&pattern, &path);
    }

    /// A literal pattern matches exactly itself.
    #[test]
    fn literal_identity(path in "[a-z/.]{1,24}") {
        prop_assert!(glob_match(&path, &path), "literal must match itself");
    }

    /// `*` never crosses a path separator.
    #[test]
    fn single_star_respects_separators(a in "[a-z]{1,8}", b in "[a-z]{1,8}", c in "[a-z]{1,8}") {
        let pattern = format!("/{}/*", a);
        let one = format!("/{}/{}", a, b);
        let two = format!("/{}/{}/{}", a, b, c);
        prop_assert!(glob_match(&pattern, &one), "one-level should match");
        prop_assert!(!glob_match(&pattern, &two), "two-level should not match");
    }

    /// `**` is a superset of `*`.
    #[test]
    fn doublestar_superset(prefix in "[a-z]{1,8}", tail in "[a-z/]{0,16}") {
        let single = format!("/{}/*", prefix);
        let double = format!("/{}/**", prefix);
        let path = format!("/{}/{}", prefix, tail);
        if glob_match(&single, &path) {
            prop_assert!(glob_match(&double, &path), "** must cover *");
        }
    }

    /// `?` matches exactly one non-separator byte.
    #[test]
    fn question_is_one_byte(a in "[a-z]{1,8}", ch in "[a-z]") {
        let pattern = format!("/{}?", a);
        let exact = format!("/{}{}", a, ch);
        let short = format!("/{}", a);
        let long = format!("/{}{}x", a, ch);
        prop_assert!(glob_match(&pattern, &exact), "one byte should match");
        prop_assert!(!glob_match(&pattern, &short), "zero bytes should not");
        prop_assert!(!glob_match(&pattern, &long), "two bytes should not");
    }

    /// Alternation distributes: `{x,y}` matches iff one branch does.
    #[test]
    fn alternation_is_union(a in "[a-z]{1,6}", b in "[a-z]{1,6}", probe in "[a-z]{1,6}") {
        let pattern = format!("/{{{},{}}}/bin", a, b);
        let hit = glob_match(&pattern, &format!("/{}/bin", probe));
        prop_assert_eq!(hit, probe == a || probe == b);
    }

    /// The compiled engine is equivalent to the interpreted reference on
    /// arbitrary patterns — metacharacters, braces (balanced or not),
    /// commas, the lot.
    #[test]
    fn compiled_equals_interpreted(pattern in "[a-z/*?{},]{0,24}", path in "[a-z/.]{0,32}") {
        let compiled = CompiledGlob::new(&pattern);
        prop_assert_eq!(
            compiled.matches(&path),
            glob_match(&pattern, &path),
            "divergence on pattern {:?} path {:?}", pattern, path
        );
    }

    /// Equivalence on well-formed nested alternations specifically.
    #[test]
    fn compiled_equals_interpreted_nested_braces(
        a in "[a-z*]{1,4}",
        b in "[a-z?]{1,4}",
        c in "[a-z]{1,4}",
        path in "[a-z/]{0,24}",
    ) {
        let pattern = format!("/{{{},{{{},{}}}}}/**", a, b, c);
        let compiled = CompiledGlob::new(&pattern);
        prop_assert_eq!(
            compiled.matches(&path),
            glob_match(&pattern, &path),
            "divergence on pattern {:?} path {:?}", pattern, path
        );
    }

    /// Equivalence on `**` runs and mixed star forms; a compiled glob is
    /// also stable across repeated calls (scratch-buffer reuse).
    #[test]
    fn compiled_equals_interpreted_star_runs(
        stars in 1usize..5,
        seg in "[a-z]{1,6}",
        path in "[a-z/]{0,32}",
    ) {
        let pattern = format!("/{}{}", seg, "*".repeat(stars));
        let compiled = CompiledGlob::new(&pattern);
        let first = compiled.matches(&path);
        prop_assert_eq!(first, glob_match(&pattern, &path));
        prop_assert_eq!(compiled.matches(&path), first, "must be stable across calls");
    }
}
