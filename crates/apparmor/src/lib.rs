//! # apparmor-lsm
//!
//! The paper's baseline: an AppArmor-like security module for the
//! simulated kernel. It *confines* named binaries (path ACLs + capability
//! masks) but never grants privilege a capability check would refuse —
//! every hook either vetoes or falls through to stock Linux policy.
//!
//! This is exactly the property the paper critiques (§1): with AppArmor,
//! least privilege is enforced from the administrator's perspective. A
//! confined-but-compromised `mount` still holds `CAP_SYS_ADMIN` and can
//! re-shape the filesystem tree arbitrarily; the confinement only limits
//! *which files* it touches directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod glob;
mod profile;

pub use glob::{glob_match, CompiledGlob};
pub use profile::{parse_cap_name, parse_profiles, render_profiles, PathAccess, PathRule, Profile};

use sim_kernel::caps::Cap;
use sim_kernel::cred::Credentials;
use sim_kernel::error::{Errno, KResult};
use sim_kernel::lsm::{Decision, FileDecision, FileOpenCtx, SecurityModule};
use sim_kernel::sync::lock;
use sim_kernel::trace::CacheStats;
use sim_kernel::vfs::Access;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Bound on the binary→profile resolution cache. Exec identities are few
/// in practice; on overflow the map is flushed wholesale.
const BINARY_CACHE_CAP: usize = 1024;

/// The AppArmor-like module: a set of profiles in enforce mode.
#[derive(Debug)]
pub struct AppArmorLsm {
    profiles: Vec<Profile>,
    /// Name of the profile the most recent hook matched, drained by the
    /// kernel to attach rule provenance to audit events.
    matched: Mutex<Option<String>>,
    /// Exec identity → index of the governing profile (None = unconfined).
    /// Invalidated whenever profiles reload.
    binary_cache: Mutex<HashMap<String, Option<usize>>>,
    binary_cache_stats: Mutex<CacheStats>,
    /// Hot-path caching toggle; benches flip this off to measure the
    /// interpreted baseline.
    caching: AtomicBool,
}

impl Default for AppArmorLsm {
    fn default() -> AppArmorLsm {
        AppArmorLsm {
            profiles: Vec::new(),
            matched: Mutex::new(None),
            binary_cache: Mutex::new(HashMap::new()),
            binary_cache_stats: Mutex::new(CacheStats::default()),
            caching: AtomicBool::new(true),
        }
    }
}

impl AppArmorLsm {
    /// A module with no profiles loaded — behaviourally identical to stock
    /// Linux (the measurement baseline).
    pub fn new() -> AppArmorLsm {
        AppArmorLsm::default()
    }

    /// Loads profiles from text, replacing the current set and dropping
    /// the binary→profile cache (the old indices are meaningless).
    pub fn load_text(&mut self, text: &str) -> Result<(), String> {
        self.profiles = parse_profiles(text)?;
        let mut cache = lock(&self.binary_cache);
        if !cache.is_empty() {
            lock(&self.binary_cache_stats).invalidations += 1;
        }
        cache.clear();
        Ok(())
    }

    /// A module preloaded with profiles resembling Ubuntu 12.04's default
    /// confinement of the studied setuid binaries.
    pub fn with_ubuntu_defaults() -> AppArmorLsm {
        let mut a = AppArmorLsm::new();
        a.load_text(UBUNTU_DEFAULT_PROFILES)
            .expect("builtin profiles parse");
        a
    }

    /// Enables or disables the hot-path caches (binary→profile map and the
    /// per-profile decision LRUs). Benches flip this off to measure the
    /// interpreted baseline; correctness is identical either way.
    pub fn set_caching(&self, on: bool) {
        self.caching.store(on, Ordering::Relaxed);
    }

    fn profile_for(&self, binary: &str) -> Option<&Profile> {
        if !self.caching.load(Ordering::Relaxed) {
            return self
                .profiles
                .iter()
                .find(|p| p.matches_binary_interpreted(binary));
        }
        {
            let cache = lock(&self.binary_cache);
            if let Some(&idx) = cache.get(binary) {
                lock(&self.binary_cache_stats).hits += 1;
                return idx.map(|i| &self.profiles[i]);
            }
        }
        lock(&self.binary_cache_stats).misses += 1;
        let idx = self.profiles.iter().position(|p| p.matches_binary(binary));
        let mut cache = lock(&self.binary_cache);
        if cache.len() >= BINARY_CACHE_CAP {
            cache.clear();
            lock(&self.binary_cache_stats).invalidations += 1;
        }
        cache.insert(binary.to_string(), idx);
        idx.map(|i| &self.profiles[i])
    }

    /// Number of loaded profiles.
    pub fn profile_count(&self) -> usize {
        self.profiles.len()
    }

    /// Counters of the binary→profile resolution cache.
    pub fn binary_cache_stats(&self) -> CacheStats {
        *lock(&self.binary_cache_stats)
    }
}

/// Profiles approximating the Ubuntu baseline: confinement of mount and
/// the ping family. Note every profile must still grant the coarse
/// capability the kernel's hard-coded check demands.
pub const UBUNTU_DEFAULT_PROFILES: &str = r#"
profile /{bin,sbin}/mount {
  capability sys_admin,
  capability dac_override,
  /etc/fstab r,
  /etc/mtab rw,
  /proc/mounts r,
  /dev/** rw,
  /mnt/** rw,
  /media/** rw,
  /bin/mount r,
}
profile /{bin,sbin}/umount {
  capability sys_admin,
  /etc/fstab r,
  /etc/mtab rw,
  /proc/mounts r,
  /mnt/** rw,
  /media/** rw,
  /bin/umount r,
}
profile /{bin,usr/bin}/ping {
  capability net_raw,
  /etc/hosts r,
  /bin/ping r,
}
"#;

impl SecurityModule for AppArmorLsm {
    fn name(&self) -> &'static str {
        "apparmor"
    }

    fn capable(&self, _cred: &Credentials, binary: &str, cap: Cap) -> Decision {
        match self.profile_for(binary) {
            Some(p) if !p.check_cap(cap) => {
                *lock(&self.matched) = Some(format!("profile {}", p.binary));
                Decision::Deny(Errno::EPERM)
            }
            _ => Decision::UseDefault,
        }
    }

    fn file_open(&self, ctx: &FileOpenCtx) -> FileDecision {
        match self.profile_for(ctx.binary) {
            Some(p) => {
                let allowed = if self.caching.load(Ordering::Relaxed) {
                    p.check_path(ctx.path, ctx.access)
                } else {
                    p.check_path_interpreted(ctx.path, ctx.access)
                };
                if allowed {
                    FileDecision::UseDefault
                } else {
                    *lock(&self.matched) = Some(format!("profile {}", p.binary));
                    FileDecision::Deny(Errno::EACCES)
                }
            }
            None => FileDecision::UseDefault,
        }
    }

    fn take_matched_rule(&self) -> Option<String> {
        lock(&self.matched).take()
    }

    fn cache_stats(&self) -> Vec<(&'static str, CacheStats)> {
        let mut decisions = CacheStats::default();
        for p in &self.profiles {
            decisions.merge(&p.decision_cache_stats());
        }
        vec![
            ("apparmor_binary_lookup", self.binary_cache_stats()),
            ("apparmor_decision_lru", decisions),
        ]
    }

    fn config_nodes(&self) -> Vec<&'static str> {
        vec!["profiles"]
    }

    fn config_write(&mut self, node: &str, content: &str) -> KResult<()> {
        match node {
            "profiles" => self.load_text(content).map_err(|_| Errno::EINVAL),
            _ => Err(Errno::ENOENT),
        }
    }

    fn config_read(&self, node: &str) -> KResult<String> {
        match node {
            "profiles" => Ok(render_profiles(&self.profiles)),
            _ => Err(Errno::ENOENT),
        }
    }
}

/// Convenience: evaluates whether a profile set would admit `(binary,
/// path, access)` — used by audit tooling and tests.
pub fn would_allow(profiles: &[Profile], binary: &str, path: &str, access: Access) -> bool {
    match profiles.iter().find(|p| p.matches_binary(binary)) {
        Some(p) => p.check_path(path, access),
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::cred::{Gid, Uid};
    use sim_kernel::kernel::Kernel;
    use sim_kernel::net::SimNet;
    use sim_kernel::vfs::Mode;

    fn boot_with_apparmor() -> (Kernel, sim_kernel::Pid) {
        let k = Kernel::new(SimNet::new());
        k.install_standard_devices().unwrap();
        k.register_lsm(Box::new(AppArmorLsm::with_ubuntu_defaults()))
            .unwrap();
        let root = k.spawn_init();
        k.vfs
            .install_file("/etc/fstab", b"", Mode(0o644), Uid::ROOT, Gid::ROOT)
            .unwrap();
        k.vfs
            .install_file("/etc/shadow", b"secret", Mode(0o600), Uid::ROOT, Gid::ROOT)
            .unwrap();
        k.vfs
            .install_file("/bin/mount", b"#!sim", Mode(0o4755), Uid::ROOT, Gid::ROOT)
            .unwrap();
        (k, root)
    }

    #[test]
    fn unconfined_binary_unaffected() {
        let (k, root) = boot_with_apparmor();
        assert!(k.read_file(root, "/etc/shadow").is_ok());
    }

    #[test]
    fn confined_mount_cannot_read_shadow_even_as_root() {
        let (k, root) = boot_with_apparmor();
        // Simulate the exploited /bin/mount: task runs that binary as root.
        k.task_mut(root).unwrap().binary = "/bin/mount".into();
        assert_eq!(k.read_file(root, "/etc/shadow").unwrap_err(), Errno::EACCES);
        // But fstab is within the profile.
        assert!(k.read_file(root, "/etc/fstab").is_ok());
    }

    #[test]
    fn confined_mount_retains_sys_admin() {
        let (k, root) = boot_with_apparmor();
        k.task_mut(root).unwrap().binary = "/bin/mount".into();
        k.vfs.mkdir_p("/mnt/cdrom").unwrap();
        // The paper's critique: the confined binary can still re-arrange
        // the filesystem tree.
        k.sys_mount(root, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro")
            .unwrap();
    }

    #[test]
    fn confined_ping_loses_sys_admin() {
        let (k, root) = boot_with_apparmor();
        k.task_mut(root).unwrap().binary = "/bin/ping".into();
        k.vfs.mkdir_p("/mnt/cdrom").unwrap();
        assert_eq!(
            k.sys_mount(root, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro")
                .unwrap_err(),
            Errno::EPERM
        );
    }

    #[test]
    fn proc_interface_roundtrip() {
        let (k, root) = boot_with_apparmor();
        let text = k.read_to_string(root, "/proc/apparmor/profiles").unwrap();
        assert!(text.contains("profile /{bin,sbin}/mount"));
        // Replace profiles through the /proc interface.
        let fd = k
            .sys_open(
                root,
                "/proc/apparmor/profiles",
                sim_kernel::syscall::OpenFlags::write_only(),
            )
            .unwrap();
        k.sys_write(root, fd, b"profile /bin/x {\n  /etc/hosts r,\n}\n")
            .unwrap();
        k.sys_close(root, fd).unwrap();
        let text = k.read_to_string(root, "/proc/apparmor/profiles").unwrap();
        assert!(text.contains("/bin/x"));
        assert!(!text.contains("mount"));
    }

    #[test]
    fn malformed_profile_write_is_einval() {
        let (k, root) = boot_with_apparmor();
        let fd = k
            .sys_open(
                root,
                "/proc/apparmor/profiles",
                sim_kernel::syscall::OpenFlags::write_only(),
            )
            .unwrap();
        assert_eq!(
            k.sys_write(root, fd, b"profile broken {").unwrap_err(),
            Errno::EINVAL
        );
    }

    #[test]
    fn config_write_requires_root() {
        let (k, _) = boot_with_apparmor();
        let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
        // 0600 root:root — the open itself is refused by DAC.
        assert_eq!(
            k.sys_open(
                user,
                "/proc/apparmor/profiles",
                sim_kernel::syscall::OpenFlags::write_only(),
            )
            .unwrap_err(),
            Errno::EACCES
        );
    }

    #[test]
    fn binary_cache_hits_and_reload_invalidation() {
        let mut a = AppArmorLsm::with_ubuntu_defaults();
        assert!(a.profile_for("/bin/mount").is_some());
        assert!(a.profile_for("/bin/mount").is_some());
        assert!(a.profile_for("/bin/unconfined").is_none());
        let s = a.binary_cache_stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        // Reload drops the cache: the same binary resolves against the new
        // set, and the invalidation is counted.
        a.load_text("profile /bin/unconfined {\n  /etc/hosts r,\n}\n")
            .unwrap();
        assert_eq!(a.binary_cache_stats().invalidations, 1);
        assert!(a.profile_for("/bin/mount").is_none());
        assert!(a.profile_for("/bin/unconfined").is_some());
    }

    #[test]
    fn caching_toggle_preserves_decisions() {
        let a = AppArmorLsm::with_ubuntu_defaults();
        let root = Credentials::root();
        let ctx = |path: &'static str| FileOpenCtx {
            cred: &root,
            path,
            binary: "/bin/mount",
            access: Access::READ,
            dac_allows: true,
            file_owner: sim_kernel::cred::Uid::ROOT,
            last_auth: None,
            last_auth_scope: None,
            now: 0,
        };
        for path in ["/etc/fstab", "/etc/shadow", "/dev/null"] {
            let cached = matches!(a.file_open(&ctx(path)), FileDecision::UseDefault);
            a.take_matched_rule();
            a.set_caching(false);
            let interpreted = matches!(a.file_open(&ctx(path)), FileDecision::UseDefault);
            a.take_matched_rule();
            a.set_caching(true);
            assert_eq!(cached, interpreted, "path {:?}", path);
        }
    }

    #[test]
    fn would_allow_helper() {
        let ps = parse_profiles(UBUNTU_DEFAULT_PROFILES).unwrap();
        assert!(would_allow(&ps, "/bin/mount", "/etc/fstab", Access::READ));
        assert!(!would_allow(&ps, "/bin/mount", "/etc/shadow", Access::READ));
        assert!(would_allow(
            &ps,
            "/bin/unconfined",
            "/etc/shadow",
            Access::READ
        ));
    }
}
