//! # apparmor-lsm
//!
//! The paper's baseline: an AppArmor-like security module for the
//! simulated kernel. It *confines* named binaries (path ACLs + capability
//! masks) but never grants privilege a capability check would refuse —
//! every hook either vetoes or falls through to stock Linux policy.
//!
//! This is exactly the property the paper critiques (§1): with AppArmor,
//! least privilege is enforced from the administrator's perspective. A
//! confined-but-compromised `mount` still holds `CAP_SYS_ADMIN` and can
//! re-shape the filesystem tree arbitrarily; the confinement only limits
//! *which files* it touches directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod glob;
mod profile;

pub use glob::glob_match;
pub use profile::{parse_cap_name, parse_profiles, render_profiles, PathAccess, PathRule, Profile};

use sim_kernel::caps::Cap;
use sim_kernel::cred::Credentials;
use sim_kernel::error::{Errno, KResult};
use sim_kernel::lsm::{Decision, FileDecision, FileOpenCtx, SecurityModule};
use sim_kernel::vfs::Access;

/// The AppArmor-like module: a set of profiles in enforce mode.
#[derive(Debug, Default)]
pub struct AppArmorLsm {
    profiles: Vec<Profile>,
    /// Name of the profile the most recent hook matched, drained by the
    /// kernel to attach rule provenance to audit events.
    matched: std::cell::RefCell<Option<String>>,
}

impl AppArmorLsm {
    /// A module with no profiles loaded — behaviourally identical to stock
    /// Linux (the measurement baseline).
    pub fn new() -> AppArmorLsm {
        AppArmorLsm::default()
    }

    /// Loads profiles from text, replacing the current set.
    pub fn load_text(&mut self, text: &str) -> Result<(), String> {
        self.profiles = parse_profiles(text)?;
        Ok(())
    }

    /// A module preloaded with profiles resembling Ubuntu 12.04's default
    /// confinement of the studied setuid binaries.
    pub fn with_ubuntu_defaults() -> AppArmorLsm {
        let mut a = AppArmorLsm::new();
        a.load_text(UBUNTU_DEFAULT_PROFILES)
            .expect("builtin profiles parse");
        a
    }

    fn profile_for(&self, binary: &str) -> Option<&Profile> {
        self.profiles.iter().find(|p| p.matches_binary(binary))
    }

    /// Number of loaded profiles.
    pub fn profile_count(&self) -> usize {
        self.profiles.len()
    }
}

/// Profiles approximating the Ubuntu baseline: confinement of mount and
/// the ping family. Note every profile must still grant the coarse
/// capability the kernel's hard-coded check demands.
pub const UBUNTU_DEFAULT_PROFILES: &str = r#"
profile /{bin,sbin}/mount {
  capability sys_admin,
  capability dac_override,
  /etc/fstab r,
  /etc/mtab rw,
  /proc/mounts r,
  /dev/** rw,
  /mnt/** rw,
  /media/** rw,
  /bin/mount r,
}
profile /{bin,sbin}/umount {
  capability sys_admin,
  /etc/fstab r,
  /etc/mtab rw,
  /proc/mounts r,
  /mnt/** rw,
  /media/** rw,
  /bin/umount r,
}
profile /{bin,usr/bin}/ping {
  capability net_raw,
  /etc/hosts r,
  /bin/ping r,
}
"#;

impl SecurityModule for AppArmorLsm {
    fn name(&self) -> &'static str {
        "apparmor"
    }

    fn capable(&self, _cred: &Credentials, binary: &str, cap: Cap) -> Decision {
        match self.profile_for(binary) {
            Some(p) if !p.check_cap(cap) => {
                *self.matched.borrow_mut() = Some(format!("profile {}", p.binary));
                Decision::Deny(Errno::EPERM)
            }
            _ => Decision::UseDefault,
        }
    }

    fn file_open(&self, ctx: &FileOpenCtx) -> FileDecision {
        match self.profile_for(&ctx.binary) {
            Some(p) => {
                if p.check_path(&ctx.path, ctx.access) {
                    FileDecision::UseDefault
                } else {
                    *self.matched.borrow_mut() = Some(format!("profile {}", p.binary));
                    FileDecision::Deny(Errno::EACCES)
                }
            }
            None => FileDecision::UseDefault,
        }
    }

    fn take_matched_rule(&self) -> Option<String> {
        self.matched.borrow_mut().take()
    }

    fn config_nodes(&self) -> Vec<&'static str> {
        vec!["profiles"]
    }

    fn config_write(&mut self, node: &str, content: &str) -> KResult<()> {
        match node {
            "profiles" => self.load_text(content).map_err(|_| Errno::EINVAL),
            _ => Err(Errno::ENOENT),
        }
    }

    fn config_read(&self, node: &str) -> KResult<String> {
        match node {
            "profiles" => Ok(render_profiles(&self.profiles)),
            _ => Err(Errno::ENOENT),
        }
    }
}

/// Convenience: evaluates whether a profile set would admit `(binary,
/// path, access)` — used by audit tooling and tests.
pub fn would_allow(profiles: &[Profile], binary: &str, path: &str, access: Access) -> bool {
    match profiles.iter().find(|p| p.matches_binary(binary)) {
        Some(p) => p.check_path(path, access),
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::cred::{Gid, Uid};
    use sim_kernel::kernel::Kernel;
    use sim_kernel::net::SimNet;
    use sim_kernel::vfs::Mode;

    fn boot_with_apparmor() -> (Kernel, sim_kernel::Pid) {
        let mut k = Kernel::new(SimNet::new());
        k.install_standard_devices().unwrap();
        k.register_lsm(Box::new(AppArmorLsm::with_ubuntu_defaults()))
            .unwrap();
        let root = k.spawn_init();
        k.vfs
            .install_file("/etc/fstab", b"", Mode(0o644), Uid::ROOT, Gid::ROOT)
            .unwrap();
        k.vfs
            .install_file("/etc/shadow", b"secret", Mode(0o600), Uid::ROOT, Gid::ROOT)
            .unwrap();
        k.vfs
            .install_file("/bin/mount", b"#!sim", Mode(0o4755), Uid::ROOT, Gid::ROOT)
            .unwrap();
        (k, root)
    }

    #[test]
    fn unconfined_binary_unaffected() {
        let (mut k, root) = boot_with_apparmor();
        assert!(k.read_file(root, "/etc/shadow").is_ok());
    }

    #[test]
    fn confined_mount_cannot_read_shadow_even_as_root() {
        let (mut k, root) = boot_with_apparmor();
        // Simulate the exploited /bin/mount: task runs that binary as root.
        k.task_mut(root).unwrap().binary = "/bin/mount".into();
        assert_eq!(k.read_file(root, "/etc/shadow").unwrap_err(), Errno::EACCES);
        // But fstab is within the profile.
        assert!(k.read_file(root, "/etc/fstab").is_ok());
    }

    #[test]
    fn confined_mount_retains_sys_admin() {
        let (mut k, root) = boot_with_apparmor();
        k.task_mut(root).unwrap().binary = "/bin/mount".into();
        k.vfs.mkdir_p("/mnt/cdrom").unwrap();
        // The paper's critique: the confined binary can still re-arrange
        // the filesystem tree.
        k.sys_mount(root, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro")
            .unwrap();
    }

    #[test]
    fn confined_ping_loses_sys_admin() {
        let (mut k, root) = boot_with_apparmor();
        k.task_mut(root).unwrap().binary = "/bin/ping".into();
        k.vfs.mkdir_p("/mnt/cdrom").unwrap();
        assert_eq!(
            k.sys_mount(root, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro")
                .unwrap_err(),
            Errno::EPERM
        );
    }

    #[test]
    fn proc_interface_roundtrip() {
        let (mut k, root) = boot_with_apparmor();
        let text = k.read_to_string(root, "/proc/apparmor/profiles").unwrap();
        assert!(text.contains("profile /{bin,sbin}/mount"));
        // Replace profiles through the /proc interface.
        let fd = k
            .sys_open(
                root,
                "/proc/apparmor/profiles",
                sim_kernel::syscall::OpenFlags::write_only(),
            )
            .unwrap();
        k.sys_write(root, fd, b"profile /bin/x {\n  /etc/hosts r,\n}\n")
            .unwrap();
        k.sys_close(root, fd).unwrap();
        let text = k.read_to_string(root, "/proc/apparmor/profiles").unwrap();
        assert!(text.contains("/bin/x"));
        assert!(!text.contains("mount"));
    }

    #[test]
    fn malformed_profile_write_is_einval() {
        let (mut k, root) = boot_with_apparmor();
        let fd = k
            .sys_open(
                root,
                "/proc/apparmor/profiles",
                sim_kernel::syscall::OpenFlags::write_only(),
            )
            .unwrap();
        assert_eq!(
            k.sys_write(root, fd, b"profile broken {").unwrap_err(),
            Errno::EINVAL
        );
    }

    #[test]
    fn config_write_requires_root() {
        let (mut k, _) = boot_with_apparmor();
        let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/bin/sh");
        // 0600 root:root — the open itself is refused by DAC.
        assert_eq!(
            k.sys_open(
                user,
                "/proc/apparmor/profiles",
                sim_kernel::syscall::OpenFlags::write_only(),
            )
            .unwrap_err(),
            Errno::EACCES
        );
    }

    #[test]
    fn would_allow_helper() {
        let ps = parse_profiles(UBUNTU_DEFAULT_PROFILES).unwrap();
        assert!(would_allow(&ps, "/bin/mount", "/etc/fstab", Access::READ));
        assert!(!would_allow(&ps, "/bin/mount", "/etc/shadow", Access::READ));
        assert!(would_allow(
            &ps,
            "/bin/unconfined",
            "/etc/shadow",
            Access::READ
        ));
    }
}
