//! AppArmor-style path globbing.
//!
//! Supports the subset of AppArmor's glob language the shipped profiles
//! use: `*` matches within a path component (not `/`), `**` matches across
//! components, `?` matches one non-`/` character, and `{a,b}` alternation.

/// Returns whether `path` matches the AppArmor-style `pattern`.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    // Fast path: a pattern without metacharacters is a literal — this is
    // the common case on every `capable()`/`file_open` hook evaluation,
    // and must not allocate.
    if !pattern.bytes().any(|b| matches!(b, b'*' | b'?' | b'{')) {
        return pattern == path;
    }
    // Expand top-level alternations first.
    if let Some(expansions) = expand_alternation(pattern) {
        return expansions.iter().any(|p| glob_match(p, path));
    }
    match_bytes(pattern.as_bytes(), path.as_bytes())
}

/// Expands a single `{a,b,...}` group, returning `None` if there is none.
fn expand_alternation(pattern: &str) -> Option<Vec<String>> {
    let open = pattern.find('{')?;
    let close = pattern[open..].find('}')? + open;
    let prefix = &pattern[..open];
    let suffix = &pattern[close + 1..];
    let body = &pattern[open + 1..close];
    Some(
        body.split(',')
            .map(|alt| format!("{}{}{}", prefix, alt, suffix))
            .collect(),
    )
}

/// Tokenized pattern element.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Tok {
    /// `*` — any run not crossing '/'.
    Star,
    /// `**` — any run, '/' included.
    DoubleStar,
    /// `?` — one non-'/' byte.
    One,
    /// A literal byte.
    Byte(u8),
}

fn tokenize(pat: &[u8]) -> Vec<Tok> {
    let mut toks = Vec::with_capacity(pat.len());
    let mut i = 0;
    while i < pat.len() {
        match pat[i] {
            b'*' => {
                // Collapse any run of stars: >= 2 behaves as `**`.
                let mut run = 0;
                while i < pat.len() && pat[i] == b'*' {
                    run += 1;
                    i += 1;
                }
                toks.push(if run >= 2 { Tok::DoubleStar } else { Tok::Star });
            }
            b'?' => {
                toks.push(Tok::One);
                i += 1;
            }
            c => {
                toks.push(Tok::Byte(c));
                i += 1;
            }
        }
    }
    toks
}

/// Dynamic-programming matcher: O(|pattern| * |path|), immune to the
/// exponential blow-up of naive backtracking on adversarial patterns.
fn match_bytes(pat: &[u8], s: &[u8]) -> bool {
    let toks = tokenize(pat);
    let (np, ns) = (toks.len(), s.len());
    // dp[j] = does toks[i..] match s[j..]? Iterate i from the end.
    let mut next = vec![false; ns + 1];
    let mut cur = vec![false; ns + 1];
    next[ns] = true;
    for i in (0..np).rev() {
        // Compute cur from next.
        cur[ns] = matches!(toks[i], Tok::Star | Tok::DoubleStar) && next[ns];
        for j in (0..ns).rev() {
            cur[j] = match toks[i] {
                Tok::Byte(c) => s[j] == c && next[j + 1],
                Tok::One => s[j] != b'/' && next[j + 1],
                // `*`: consume nothing (move to next token) or one
                // non-'/' byte (stay on this token).
                Tok::Star => next[j] || (s[j] != b'/' && cur[j + 1]),
                // `**`: consume nothing or any one byte.
                Tok::DoubleStar => next[j] || cur[j + 1],
            };
        }
        std::mem::swap(&mut cur, &mut next);
    }
    next[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        assert!(glob_match("/etc/fstab", "/etc/fstab"));
        assert!(!glob_match("/etc/fstab", "/etc/fstab2"));
        assert!(!glob_match("/etc/fstab", "/etc/fsta"));
    }

    #[test]
    fn single_star_stays_in_component() {
        assert!(glob_match("/etc/*.conf", "/etc/host.conf"));
        assert!(!glob_match("/etc/*.conf", "/etc/apt/apt.conf"));
        assert!(glob_match("/dev/tty*", "/dev/ttyS0"));
        assert!(!glob_match("/dev/*", "/dev/pts/0"));
    }

    #[test]
    fn double_star_crosses_components() {
        assert!(glob_match("/dev/**", "/dev/pts/0"));
        assert!(glob_match("/home/**", "/home/alice/.forward"));
        assert!(!glob_match("/dev/**", "/etc/passwd"));
    }

    #[test]
    fn question_mark() {
        assert!(glob_match("/dev/tty?", "/dev/tty1"));
        assert!(!glob_match("/dev/tty?", "/dev/tty10"));
        assert!(!glob_match("/dev/tty?", "/dev/tty/"));
    }

    #[test]
    fn alternation() {
        assert!(glob_match("/{bin,sbin}/mount", "/bin/mount"));
        assert!(glob_match("/{bin,sbin}/mount", "/sbin/mount"));
        assert!(!glob_match("/{bin,sbin}/mount", "/usr/bin/mount"));
    }

    #[test]
    fn empty_and_root() {
        assert!(glob_match("/**", "/anything/at/all"));
        assert!(glob_match("/*", "/x"));
        assert!(!glob_match("", "/x"));
    }

    #[test]
    fn star_can_match_empty() {
        assert!(glob_match("/etc/*", "/etc/"));
        assert!(glob_match("/etc/passwd*", "/etc/passwd"));
    }
}
