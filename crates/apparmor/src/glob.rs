//! AppArmor-style path globbing.
//!
//! Supports the subset of AppArmor's glob language the shipped profiles
//! use: `*` matches within a path component (not `/`), `**` matches across
//! components, `?` matches one non-`/` character, and `{a,b}` alternation.
//!
//! Two evaluators share the same semantics:
//!
//! * [`glob_match`] — the interpreted reference: re-tokenizes and
//!   allocates DP tables on every call. Kept as the oracle for property
//!   tests and as the slow path for one-shot matches.
//! * [`CompiledGlob`] — the compile-once engine used on the LSM hot path:
//!   alternations are fully pre-expanded and each branch is tokenized at
//!   construction, with literal / prefix fast paths and reusable DP
//!   scratch buffers so steady-state matching performs no allocation.

use sim_kernel::vfs::{Name, PathArena};

/// Returns whether `path` matches the AppArmor-style `pattern`.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    // Fast path: a pattern without metacharacters is a literal — this is
    // the common case on every `capable()`/`file_open` hook evaluation,
    // and must not allocate.
    if !pattern.bytes().any(|b| matches!(b, b'*' | b'?' | b'{')) {
        return pattern == path;
    }
    // Expand top-level alternations first.
    if let Some(expansions) = expand_alternation(pattern) {
        return expansions.iter().any(|p| glob_match(p, path));
    }
    match_bytes(pattern.as_bytes(), path.as_bytes())
}

/// Expands a single `{a,b,...}` group, returning `None` if there is none.
///
/// The closing brace is matched by depth, so `{a,{b,c}}` expands to `a`
/// and `{b,c}` (which a recursive call expands further) rather than
/// splitting at the first `}`. Alternatives are likewise split only at
/// depth-0 commas. A `{` with no matching `}` is treated as a literal.
fn expand_alternation(pattern: &str) -> Option<Vec<String>> {
    let open = pattern.find('{')?;
    let bytes = pattern.as_bytes();
    let mut depth = 0usize;
    let mut close = None;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let close = close?;
    let prefix = &pattern[..open];
    let suffix = &pattern[close + 1..];
    let body = &pattern[open + 1..close];
    // Split the body at top-level commas only.
    let mut alts = Vec::new();
    let mut start = 0;
    let mut body_depth = 0usize;
    for (i, b) in body.bytes().enumerate() {
        match b {
            b'{' => body_depth += 1,
            b'}' => body_depth = body_depth.saturating_sub(1),
            b',' if body_depth == 0 => {
                alts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    alts.push(&body[start..]);
    Some(
        alts.into_iter()
            .map(|alt| format!("{}{}{}", prefix, alt, suffix))
            .collect(),
    )
}

/// Fully expands every alternation in `pattern`, returning the list of
/// alternation-free branches. A pattern without (well-formed) groups
/// expands to itself. Shared by [`glob_match`] (via its recursion) and
/// [`CompiledGlob`], so the two evaluators agree on brace semantics.
pub(crate) fn expand_all(pattern: &str) -> Vec<String> {
    match expand_alternation(pattern) {
        None => vec![pattern.to_string()],
        Some(parts) => parts.iter().flat_map(|p| expand_all(p)).collect(),
    }
}

/// Tokenized pattern element.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tok {
    /// `*` — any run not crossing '/'.
    Star,
    /// `**` — any run, '/' included.
    DoubleStar,
    /// `?` — one non-'/' byte.
    One,
    /// A literal byte.
    Byte(u8),
}

fn tokenize(pat: &[u8]) -> Vec<Tok> {
    let mut toks = Vec::with_capacity(pat.len());
    let mut i = 0;
    while i < pat.len() {
        match pat[i] {
            b'*' => {
                // Collapse any run of stars: >= 2 behaves as `**`.
                let mut run = 0;
                while i < pat.len() && pat[i] == b'*' {
                    run += 1;
                    i += 1;
                }
                toks.push(if run >= 2 { Tok::DoubleStar } else { Tok::Star });
            }
            b'?' => {
                toks.push(Tok::One);
                i += 1;
            }
            c => {
                toks.push(Tok::Byte(c));
                i += 1;
            }
        }
    }
    toks
}

/// Dynamic-programming matcher: O(|pattern| * |path|), immune to the
/// exponential blow-up of naive backtracking on adversarial patterns.
fn match_bytes(pat: &[u8], s: &[u8]) -> bool {
    let toks = tokenize(pat);
    let mut next = vec![0u8; s.len() + 1];
    let mut cur = vec![0u8; s.len() + 1];
    dp_match(&toks, s, &mut cur, &mut next)
}

/// Core DP over pre-tokenized `toks` against `s`, using caller-provided
/// table rows (each exactly `s.len() + 1` bytes; contents are rewritten
/// here). Extracted so [`CompiledGlob`] can run it over arena-pooled
/// scratch instead of allocating per call.
fn dp_match<'a>(toks: &[Tok], s: &[u8], mut cur: &'a mut [u8], mut next: &'a mut [u8]) -> bool {
    let (np, ns) = (toks.len(), s.len());
    debug_assert!(cur.len() == ns + 1 && next.len() == ns + 1);
    // dp[j] = does toks[i..] match s[j..]? Iterate i from the end.
    for b in next.iter_mut() {
        *b = 0;
    }
    next[ns] = 1;
    for i in (0..np).rev() {
        // Compute cur from next.
        cur[ns] = (matches!(toks[i], Tok::Star | Tok::DoubleStar) && next[ns] != 0) as u8;
        for j in (0..ns).rev() {
            cur[j] = match toks[i] {
                Tok::Byte(c) => (s[j] == c && next[j + 1] != 0) as u8,
                Tok::One => (s[j] != b'/' && next[j + 1] != 0) as u8,
                // `*`: consume nothing (move to next token) or one
                // non-'/' byte (stay on this token).
                Tok::Star => (next[j] != 0 || (s[j] != b'/' && cur[j + 1] != 0)) as u8,
                // `**`: consume nothing or any one byte.
                Tok::DoubleStar => (next[j] != 0 || cur[j + 1] != 0) as u8,
            };
        }
        std::mem::swap(&mut cur, &mut next);
    }
    next[0] != 0
}

/// One alternation-free branch of a compiled pattern, specialized by
/// shape so the common profile rules skip the DP entirely.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Branch {
    /// No metacharacters: the leaf is interned at compile time and the
    /// branch keeps the interner-backed `&'static str`, so a match is
    /// one length check plus a short memcmp — no hash or stripe lock on
    /// the candidate path. (Probing the interner for the candidate
    /// instead costs a full-path hash per call, which measures slower
    /// than comparing a ≤32-byte leaf directly.)
    Literal(&'static str),
    /// `<literal>**`: a pure prefix test (`/dev/**`, `/home/**`).
    PrefixAll(Vec<u8>),
    /// General case: a stripped literal prefix plus the remaining tokens,
    /// matched with the DP.
    Toks {
        /// Leading literal bytes (checked with `starts_with`).
        prefix: Vec<u8>,
        /// Tokens after the literal prefix; never starts with `Byte`.
        toks: Vec<Tok>,
    },
}

impl Branch {
    fn compile(leaf: &str) -> Branch {
        let toks = tokenize(leaf.as_bytes());
        let split = toks
            .iter()
            .position(|t| !matches!(t, Tok::Byte(_)))
            .unwrap_or(toks.len());
        let prefix: Vec<u8> = toks[..split]
            .iter()
            .map(|t| match t {
                Tok::Byte(b) => *b,
                _ => unreachable!("prefix is all Byte tokens"),
            })
            .collect();
        let rest = &toks[split..];
        if rest.is_empty() {
            Branch::Literal(Name::intern(leaf).as_str())
        } else if rest.len() == 1 && rest[0] == Tok::DoubleStar {
            Branch::PrefixAll(prefix)
        } else {
            Branch::Toks {
                prefix,
                toks: rest.to_vec(),
            }
        }
    }

    fn matches(&self, s: &[u8], arena: &PathArena) -> bool {
        match self {
            Branch::Literal(lit) => s == lit.as_bytes(),
            Branch::PrefixAll(lit) => s.starts_with(lit),
            Branch::Toks { prefix, toks } => {
                if !s.starts_with(prefix) {
                    return false;
                }
                let rest = &s[prefix.len()..];
                let mut cur = arena.bytes(rest.len() + 1);
                let mut next = arena.bytes(rest.len() + 1);
                dp_match(toks, rest, &mut cur, &mut next)
            }
        }
    }
}

/// A pattern compiled once at profile-load time.
///
/// Construction pays for tokenization, full alternation expansion, and
/// interning of literal leaves; [`CompiledGlob::matches`] then runs
/// allocation-free in the steady state (literal branches memcmp their
/// interner-backed text, and the DP rows come from the thread-local
/// path arena's recycled pool). Semantics are identical to
/// [`glob_match`] — enforced by property tests.
pub struct CompiledGlob {
    pattern: String,
    branches: Vec<Branch>,
    /// Any [`Branch::Toks`] present? Gates the arena scope: literal and
    /// prefix branches need no DP scratch.
    has_toks: bool,
}

impl CompiledGlob {
    /// Compiles `pattern`.
    pub fn new(pattern: &str) -> CompiledGlob {
        let branches: Vec<Branch> = expand_all(pattern)
            .iter()
            .map(|leaf| Branch::compile(leaf))
            .collect();
        let has_toks = branches.iter().any(|b| matches!(b, Branch::Toks { .. }));
        CompiledGlob {
            pattern: pattern.to_string(),
            branches,
            has_toks,
        }
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Whether `path` matches. Equivalent to
    /// `glob_match(self.pattern(), path)`.
    pub fn matches(&self, path: &str) -> bool {
        let s = path.as_bytes();
        // Literal and prefix branches resolve with a plain compare; the
        // arena scope only opens when a wildcard branch actually needs
        // DP scratch rows.
        for b in &self.branches {
            match b {
                Branch::Literal(lit) => {
                    if s == lit.as_bytes() {
                        return true;
                    }
                }
                Branch::PrefixAll(lit) => {
                    if s.starts_with(lit) {
                        return true;
                    }
                }
                Branch::Toks { .. } => {}
            }
        }
        self.has_toks
            && PathArena::scope(|arena| {
                self.branches
                    .iter()
                    .any(|b| matches!(b, Branch::Toks { .. }) && b.matches(s, arena))
            })
    }
}

impl Clone for CompiledGlob {
    fn clone(&self) -> CompiledGlob {
        CompiledGlob::new(&self.pattern)
    }
}

impl PartialEq for CompiledGlob {
    fn eq(&self, other: &CompiledGlob) -> bool {
        self.pattern == other.pattern
    }
}

impl Eq for CompiledGlob {}

impl std::fmt::Debug for CompiledGlob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledGlob")
            .field("pattern", &self.pattern)
            .field("branches", &self.branches.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        assert!(glob_match("/etc/fstab", "/etc/fstab"));
        assert!(!glob_match("/etc/fstab", "/etc/fstab2"));
        assert!(!glob_match("/etc/fstab", "/etc/fsta"));
    }

    #[test]
    fn single_star_stays_in_component() {
        assert!(glob_match("/etc/*.conf", "/etc/host.conf"));
        assert!(!glob_match("/etc/*.conf", "/etc/apt/apt.conf"));
        assert!(glob_match("/dev/tty*", "/dev/ttyS0"));
        assert!(!glob_match("/dev/*", "/dev/pts/0"));
    }

    #[test]
    fn double_star_crosses_components() {
        assert!(glob_match("/dev/**", "/dev/pts/0"));
        assert!(glob_match("/home/**", "/home/alice/.forward"));
        assert!(!glob_match("/dev/**", "/etc/passwd"));
    }

    #[test]
    fn question_mark() {
        assert!(glob_match("/dev/tty?", "/dev/tty1"));
        assert!(!glob_match("/dev/tty?", "/dev/tty10"));
        assert!(!glob_match("/dev/tty?", "/dev/tty/"));
    }

    #[test]
    fn alternation() {
        assert!(glob_match("/{bin,sbin}/mount", "/bin/mount"));
        assert!(glob_match("/{bin,sbin}/mount", "/sbin/mount"));
        assert!(!glob_match("/{bin,sbin}/mount", "/usr/bin/mount"));
    }

    #[test]
    fn nested_alternation() {
        // Regression: the close brace must be matched by depth, not by
        // the first `}` in the pattern.
        assert!(glob_match("/{a,{b,c}}/x", "/a/x"));
        assert!(glob_match("/{a,{b,c}}/x", "/b/x"));
        assert!(glob_match("/{a,{b,c}}/x", "/c/x"));
        assert!(!glob_match("/{a,{b,c}}/x", "/d/x"));
        // Nested group inside the first alternative.
        assert!(glob_match("/{{a,b},c}/x", "/a/x"));
        assert!(glob_match("/{{a,b},c}/x", "/c/x"));
        // Commas inside a nested group must not split the outer body.
        assert!(glob_match("/usr/{lib{,64},share}/x", "/usr/lib/x"));
        assert!(glob_match("/usr/{lib{,64},share}/x", "/usr/lib64/x"));
        assert!(glob_match("/usr/{lib{,64},share}/x", "/usr/share/x"));
        assert!(!glob_match("/usr/{lib{,64},share}/x", "/usr/lib6/x"));
    }

    #[test]
    fn unmatched_brace_is_literal() {
        assert!(glob_match("/etc/{oops", "/etc/{oops"));
        assert!(!glob_match("/etc/{oops", "/etc/oops"));
    }

    #[test]
    fn expand_all_flattens_nesting() {
        let mut v = expand_all("/{a,{b,c}}/x");
        v.sort();
        assert_eq!(v, ["/a/x", "/b/x", "/c/x"]);
        assert_eq!(expand_all("/plain"), ["/plain"]);
    }

    #[test]
    fn empty_and_root() {
        assert!(glob_match("/**", "/anything/at/all"));
        assert!(glob_match("/*", "/x"));
        assert!(!glob_match("", "/x"));
    }

    #[test]
    fn star_can_match_empty() {
        assert!(glob_match("/etc/*", "/etc/"));
        assert!(glob_match("/etc/passwd*", "/etc/passwd"));
    }

    #[test]
    fn compiled_agrees_on_basics() {
        for (pat, path, want) in [
            ("/etc/fstab", "/etc/fstab", true),
            ("/etc/fstab", "/etc/fstab2", false),
            ("/etc/*.conf", "/etc/host.conf", true),
            ("/etc/*.conf", "/etc/apt/apt.conf", false),
            ("/dev/**", "/dev/pts/0", true),
            ("/dev/**", "/etc/passwd", false),
            ("/dev/tty?", "/dev/tty1", true),
            ("/dev/tty?", "/dev/tty10", false),
            ("/{bin,sbin}/mount", "/sbin/mount", true),
            ("/{a,{b,c}}/x", "/c/x", true),
            ("/**", "/anything/at/all", true),
            ("", "/x", false),
            ("/etc/{oops", "/etc/{oops", true),
        ] {
            let g = CompiledGlob::new(pat);
            assert_eq!(g.matches(path), want, "pattern {:?} path {:?}", pat, path);
            assert_eq!(g.matches(path), glob_match(pat, path));
        }
    }

    #[test]
    fn compiled_is_reusable_and_cloneable() {
        let g = CompiledGlob::new("/dev/**");
        // Repeated calls exercise the retained scratch buffers.
        for _ in 0..3 {
            assert!(g.matches("/dev/pts/0"));
            assert!(!g.matches("/etc/passwd"));
        }
        let g2 = g.clone();
        assert_eq!(g, g2);
        assert!(g2.matches("/dev/null"));
        assert_eq!(g.pattern(), "/dev/**");
    }
}
