//! AppArmor profiles and their text grammar.
//!
//! A profile confines one binary: which paths it may read/write/execute
//! and which capabilities it may use. The paper's baseline is Ubuntu's
//! AppArmor; its key property (§1) is that confinement is expressed from
//! the *administrator's* perspective — a confined-but-compromised `mount`
//! may still corrupt the whole filesystem tree, because the profile must
//! allow everything the legitimate binary could ever legitimately do.

use crate::glob::{glob_match, CompiledGlob};
use sim_kernel::caps::{Cap, CapSet};
use sim_kernel::sync::lock;
use sim_kernel::trace::CacheStats;
use sim_kernel::vfs::Access;
use std::collections::HashMap;
use std::sync::Mutex;

/// Per-profile (path, access) → decision LRU capacity. Small on purpose:
/// a confined binary's working set of distinct paths is tiny, and the
/// cache is dropped whenever profiles reload.
const DECISION_CACHE_CAP: usize = 64;

/// (path, access) → decision memo with coarse LRU eviction.
///
/// Keyed access-first so a hit probes the inner map with `&str` — no
/// allocation on the hot path. Values carry a last-use tick; on overflow
/// the stalest entry is evicted.
#[derive(Clone, Debug, Default)]
struct DecisionCache {
    map: HashMap<u32, HashMap<String, (bool, u64)>>,
    entries: usize,
    tick: u64,
    stats: CacheStats,
}

impl DecisionCache {
    fn get(&mut self, path: &str, access: u32) -> Option<bool> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(&access).and_then(|m| m.get_mut(path)) {
            Some(entry) => {
                entry.1 = tick;
                self.stats.hits += 1;
                Some(entry.0)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, path: &str, access: u32, decision: bool) {
        if self.entries >= DECISION_CACHE_CAP {
            self.evict_stalest();
        }
        let tick = self.tick;
        if self
            .map
            .entry(access)
            .or_default()
            .insert(path.to_string(), (decision, tick))
            .is_none()
        {
            self.entries += 1;
        }
    }

    fn evict_stalest(&mut self) {
        let mut stalest: Option<(u32, String, u64)> = None;
        for (&acc, inner) in &self.map {
            for (p, &(_, used)) in inner {
                if stalest.as_ref().is_none_or(|s| used < s.2) {
                    stalest = Some((acc, p.clone(), used));
                }
            }
        }
        if let Some((acc, p, _)) = stalest {
            if let Some(inner) = self.map.get_mut(&acc) {
                if inner.remove(&p).is_some() {
                    self.entries -= 1;
                }
            }
        }
    }

    fn clear(&mut self) {
        if self.entries > 0 {
            self.stats.invalidations += 1;
        }
        self.map.clear();
        self.entries = 0;
    }
}

/// Access letters on a path rule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathAccess {
    /// Read allowed.
    pub read: bool,
    /// Write allowed.
    pub write: bool,
    /// Execute allowed.
    pub exec: bool,
}

impl PathAccess {
    /// Parses an access string such as `rw`, `r`, `rix`.
    pub fn parse(s: &str) -> Option<PathAccess> {
        let mut a = PathAccess::default();
        for c in s.chars() {
            match c {
                'r' => a.read = true,
                'w' | 'a' => a.write = true,
                'x' | 'i' | 'p' | 'u' | 'm' => a.exec = true,
                _ => return None,
            }
        }
        Some(a)
    }

    /// Whether this grants everything in `want`.
    pub fn covers(&self, want: Access) -> bool {
        (!want.wants_read() || self.read)
            && (!want.wants_write() || self.write)
            && (!want.wants_exec() || self.exec)
    }
}

/// One path rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathRule {
    /// Glob pattern.
    pub pattern: String,
    /// Granted (or denied) access.
    pub access: PathAccess,
    /// `deny` rules override allow rules.
    pub deny: bool,
    // Compiled at parse time; equality follows `pattern`, so the derived
    // PartialEq stays consistent.
    compiled: CompiledGlob,
}

impl PathRule {
    /// Builds a rule, compiling the pattern once.
    pub fn new(pattern: &str, access: PathAccess, deny: bool) -> PathRule {
        PathRule {
            pattern: pattern.to_string(),
            access,
            deny,
            compiled: CompiledGlob::new(pattern),
        }
    }

    /// Whether `path` matches this rule's pattern (compiled fast path).
    pub fn matches(&self, path: &str) -> bool {
        self.compiled.matches(path)
    }
}

/// A profile confining one binary.
#[derive(Debug, Default)]
pub struct Profile {
    /// Absolute path (or glob) of the confined binary.
    pub binary: String,
    /// Path rules, evaluated deny-first.
    pub paths: Vec<PathRule>,
    /// Capabilities the confined binary may use.
    pub caps: CapSet,
    // Lazily compiled binary glob; re-validated against `binary` on every
    // use since the field is public.
    binary_glob: Mutex<Option<CompiledGlob>>,
    decision_cache: Mutex<DecisionCache>,
}

impl Clone for Profile {
    fn clone(&self) -> Profile {
        // Caches are per-instance working state: the clone starts cold.
        Profile {
            binary: self.binary.clone(),
            paths: self.paths.clone(),
            caps: self.caps,
            binary_glob: Mutex::new(None),
            decision_cache: Mutex::new(DecisionCache::default()),
        }
    }
}

impl Profile {
    /// Whether the profile applies to `binary` (compiled, lazily cached).
    pub fn matches_binary(&self, binary: &str) -> bool {
        let mut slot = lock(&self.binary_glob);
        match slot.as_ref() {
            Some(g) if g.pattern() == self.binary => {}
            _ => *slot = Some(CompiledGlob::new(&self.binary)),
        }
        slot.as_ref().expect("just filled").matches(binary)
    }

    /// Interpreted [`Profile::matches_binary`]: re-tokenizes per call.
    /// Kept as the benchmark baseline and equivalence oracle.
    pub fn matches_binary_interpreted(&self, binary: &str) -> bool {
        glob_match(&self.binary, binary)
    }

    /// Evaluates a path access: `true` allowed, `false` explicitly denied
    /// or unmatched (AppArmor enforce mode denies by default). Memoized
    /// per (path, access) in a small LRU; compiled rule evaluation on
    /// miss.
    pub fn check_path(&self, path: &str, want: Access) -> bool {
        let _span = sim_kernel::trace::span(sim_kernel::trace::Pathway::PolicyCache);
        let mut cache = lock(&self.decision_cache);
        if let Some(d) = cache.get(path, want.0) {
            return d;
        }
        let d = self.evaluate_path(path, want);
        cache.insert(path, want.0, d);
        d
    }

    /// Rule evaluation over the compiled globs, bypassing the LRU.
    fn evaluate_path(&self, path: &str, want: Access) -> bool {
        for r in self.paths.iter().filter(|r| r.deny) {
            if r.access.covers(want) && r.matches(path) {
                return false;
            }
        }
        self.paths
            .iter()
            .filter(|r| !r.deny)
            .any(|r| r.access.covers(want) && r.matches(path))
    }

    /// Interpreted [`Profile::check_path`]: per-call tokenization and DP
    /// allocation, no memoization. This is the pre-compile hot path, kept
    /// as the benchmark baseline and equivalence oracle.
    pub fn check_path_interpreted(&self, path: &str, want: Access) -> bool {
        for r in self.paths.iter().filter(|r| r.deny) {
            if glob_match(&r.pattern, path) && r.access.covers(want) {
                return false;
            }
        }
        self.paths
            .iter()
            .filter(|r| !r.deny)
            .any(|r| glob_match(&r.pattern, path) && r.access.covers(want))
    }

    /// Whether the profile grants `cap`.
    pub fn check_cap(&self, cap: Cap) -> bool {
        self.caps.has(cap)
    }

    /// Hit/miss/invalidation counters of the per-profile decision LRU.
    pub fn decision_cache_stats(&self) -> CacheStats {
        lock(&self.decision_cache).stats
    }

    /// Drops memoized decisions (profile reload, bench cold runs).
    pub fn clear_decision_cache(&self) {
        lock(&self.decision_cache).clear();
    }
}

/// Parses a capability name as written in profiles (`sys_admin`).
pub fn parse_cap_name(name: &str) -> Option<Cap> {
    let upper = format!("CAP_{}", name.to_ascii_uppercase());
    Cap::ALL.into_iter().find(|c| c.name() == upper)
}

/// Parses profile text. Grammar (a practical subset of AppArmor's):
///
/// ```text
/// profile /bin/mount {
///   capability sys_admin,
///   /etc/fstab r,
///   /dev/** rw,
///   deny /etc/shadow rw,
/// }
/// ```
pub fn parse_profiles(text: &str) -> Result<Vec<Profile>, String> {
    let mut out = Vec::new();
    let mut cur: Option<Profile> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |m: &str| format!("line {}: {}", lineno + 1, m);
        if let Some(rest) = line.strip_prefix("profile ") {
            if cur.is_some() {
                return Err(err("nested profile"));
            }
            let rest = rest.trim();
            let binary = rest
                .strip_suffix('{')
                .map(str::trim)
                .ok_or_else(|| err("expected '{' after profile name"))?;
            cur = Some(Profile {
                binary: binary.to_string(),
                ..Profile::default()
            });
            continue;
        }
        if line == "}" {
            let p = cur.take().ok_or_else(|| err("unmatched '}'"))?;
            out.push(p);
            continue;
        }
        let p = cur.as_mut().ok_or_else(|| err("rule outside profile"))?;
        let body = line
            .strip_suffix(',')
            .ok_or_else(|| err("rule must end with ','"))?
            .trim();
        if let Some(capname) = body.strip_prefix("capability ") {
            let cap = parse_cap_name(capname.trim()).ok_or_else(|| err("unknown capability"))?;
            p.caps.add(cap);
            continue;
        }
        let (deny, body) = match body.strip_prefix("deny ") {
            Some(b) => (true, b.trim()),
            None => (false, body),
        };
        let mut parts = body.rsplitn(2, ' ');
        let access_s = parts.next().ok_or_else(|| err("missing access"))?;
        let pattern = parts.next().ok_or_else(|| err("missing path"))?.trim();
        if !pattern.starts_with('/') {
            return Err(err("path rules must be absolute"));
        }
        let access = PathAccess::parse(access_s).ok_or_else(|| err("bad access letters"))?;
        p.paths.push(PathRule::new(pattern, access, deny));
    }
    if cur.is_some() {
        return Err("unterminated profile".into());
    }
    Ok(out)
}

/// Renders profiles back to the text grammar (round-trip support for the
/// `/proc` interface).
pub fn render_profiles(profiles: &[Profile]) -> String {
    let mut s = String::new();
    for p in profiles {
        s.push_str(&format!("profile {} {{\n", p.binary));
        for c in p.caps.iter() {
            s.push_str(&format!(
                "  capability {},\n",
                c.name().trim_start_matches("CAP_").to_ascii_lowercase()
            ));
        }
        for r in &p.paths {
            let mut acc = String::new();
            if r.access.read {
                acc.push('r');
            }
            if r.access.write {
                acc.push('w');
            }
            if r.access.exec {
                acc.push('x');
            }
            s.push_str(&format!(
                "  {}{} {},\n",
                if r.deny { "deny " } else { "" },
                r.pattern,
                acc
            ));
        }
        s.push_str("}\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# mount confinement
profile /bin/mount {
  capability sys_admin,
  /etc/fstab r,
  /dev/** rw,
  /proc/mounts r,
  deny /etc/shadow rw,
}

profile /usr/bin/ping {
  capability net_raw,
  /etc/hosts r,
}
"#;

    #[test]
    fn parse_sample() {
        let ps = parse_profiles(SAMPLE).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].binary, "/bin/mount");
        assert!(ps[0].check_cap(Cap::SysAdmin));
        assert!(!ps[0].check_cap(Cap::NetRaw));
        assert!(ps[1].check_cap(Cap::NetRaw));
    }

    #[test]
    fn path_rules_enforced() {
        let ps = parse_profiles(SAMPLE).unwrap();
        let mount = &ps[0];
        assert!(mount.check_path("/etc/fstab", Access::READ));
        assert!(!mount.check_path("/etc/fstab", Access::WRITE));
        assert!(mount.check_path("/dev/cdrom", Access::WRITE));
        assert!(mount.check_path("/dev/pts/0", Access::READ));
        // Default deny for unmatched paths.
        assert!(!mount.check_path("/etc/passwd", Access::READ));
    }

    #[test]
    fn deny_overrides_allow() {
        let ps =
            parse_profiles("profile /x {\n  /etc/** rw,\n  deny /etc/shadow rw,\n}\n").unwrap();
        assert!(ps[0].check_path("/etc/passwd", Access::WRITE));
        assert!(!ps[0].check_path("/etc/shadow", Access::READ.and(Access::WRITE)));
        // Deny rule lists rw; a pure read request is covered by it too.
        assert!(!ps[0].check_path("/etc/shadow", Access::WRITE));
    }

    #[test]
    fn binary_glob() {
        let p = Profile {
            binary: "/{bin,usr/bin}/ping".into(),
            ..Profile::default()
        };
        assert!(p.matches_binary("/bin/ping"));
        assert!(p.matches_binary("/usr/bin/ping"));
        assert!(!p.matches_binary("/sbin/ping"));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_profiles("junk line").is_err());
        assert!(parse_profiles("profile /x {\n  /etc/passwd r\n}").is_err()); // missing comma
        assert!(parse_profiles("profile /x {\n  capability bogus_cap,\n}").is_err());
        assert!(parse_profiles("profile /x {").is_err()); // unterminated
        assert!(parse_profiles("profile /x {\n  relative r,\n}").is_err());
    }

    #[test]
    fn render_roundtrip() {
        let ps = parse_profiles(SAMPLE).unwrap();
        let text = render_profiles(&ps);
        let ps2 = parse_profiles(&text).unwrap();
        assert_eq!(ps2.len(), ps.len());
        assert_eq!(ps2[0].paths, ps[0].paths);
        assert_eq!(ps2[0].caps, ps[0].caps);
    }

    #[test]
    fn cached_check_path_agrees_with_interpreted() {
        let ps = parse_profiles(SAMPLE).unwrap();
        let mount = &ps[0];
        for path in ["/etc/fstab", "/dev/pts/0", "/etc/shadow", "/etc/passwd"] {
            for want in [Access::READ, Access::WRITE, Access::READ.and(Access::WRITE)] {
                // Twice: the second call exercises the LRU hit path.
                assert_eq!(
                    mount.check_path(path, want),
                    mount.check_path_interpreted(path, want)
                );
                assert_eq!(
                    mount.check_path(path, want),
                    mount.check_path_interpreted(path, want)
                );
            }
        }
        let s = mount.decision_cache_stats();
        assert!(s.hits > 0 && s.misses > 0);
    }

    #[test]
    fn decision_cache_eviction_keeps_answers_right() {
        let ps = parse_profiles("profile /x {\n  /data/** r,\n}\n").unwrap();
        let p = &ps[0];
        // Blow well past the LRU capacity; every answer must stay exact.
        for i in 0..200 {
            let path = format!("/data/file{}", i);
            assert!(p.check_path(&path, Access::READ));
            assert!(!p.check_path(&path, Access::WRITE));
        }
        assert!(!p.check_path("/etc/shadow", Access::READ));
    }

    #[test]
    fn clear_decision_cache_counts_invalidation() {
        let ps = parse_profiles(SAMPLE).unwrap();
        ps[0].check_path("/etc/fstab", Access::READ);
        ps[0].clear_decision_cache();
        assert_eq!(ps[0].decision_cache_stats().invalidations, 1);
        // Clearing an empty cache is not an invalidation.
        ps[0].clear_decision_cache();
        assert_eq!(ps[0].decision_cache_stats().invalidations, 1);
    }

    #[test]
    fn access_parse() {
        assert_eq!(
            PathAccess::parse("rw"),
            Some(PathAccess {
                read: true,
                write: true,
                exec: false
            })
        );
        assert!(PathAccess::parse("rz").is_none());
        assert!(PathAccess::parse("rix").unwrap().exec);
    }
}
