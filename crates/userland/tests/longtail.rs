//! §5.4: the long tail of setuid binaries. The interfaces are already
//! addressed by Protego, but some need *policy refinement* — the
//! tcptraceroute case is the paper's caveat made executable.

use userland::{boot, SystemMode};

#[test]
fn tcptraceroute_needs_a_policy_refinement_on_protego() {
    // Legacy: setuid-root, works out of the box.
    let mut legacy = boot(SystemMode::Legacy);
    let alice = legacy.login("alice", "alicepw").unwrap();
    let r = legacy
        .run(alice, "/usr/bin/tcptraceroute", &["8.8.8.8"], &[])
        .unwrap();
    assert!(r.ok(), "legacy: {}", r.stdout);

    // Protego, default policy: the raw-TCP probe is not on the whitelist
    // mined from the studied binaries -> filtered.
    let mut protego = boot(SystemMode::Protego);
    let alice = protego.login("alice", "alicepw").unwrap();
    let r = protego
        .run(alice, "/usr/bin/tcptraceroute", &["8.8.8.8"], &[])
        .unwrap();
    assert!(!r.ok());
    assert!(r.stdout.contains("filtered by policy"), "{}", r.stdout);

    // The administrator refines the netfilter policy with one iptables
    // rule (rule ordering is the admin's responsibility, as with real
    // iptables)...
    let root = protego.login("root", "rootpw").unwrap();
    let r = protego
        .run(
            root,
            "/sbin/iptables",
            &["-A", "allow-tcp-probes", "tcp", "accept"],
            &[],
        )
        .unwrap();
    assert!(r.ok(), "{}", r.stdout);

    // ...and the unprivileged tool now works — no setuid bit involved.
    let r = protego
        .run(alice, "/usr/bin/tcptraceroute", &["8.8.8.8"], &[])
        .unwrap();
    assert!(r.ok(), "after refinement: {}", r.stdout);
}

#[test]
fn lppasswd_uses_fragments_on_protego() {
    for mode in [SystemMode::Legacy, SystemMode::Protego] {
        let mut sys = boot(mode);
        let alice = sys.login("alice", "alicepw").unwrap();
        let r = sys
            .run(alice, "/usr/bin/lppasswd", &["printpw"], &[])
            .unwrap();
        assert!(r.ok(), "{:?}: {}", mode, r.stdout);
        let init = sys.init_pid();
        match mode {
            SystemMode::Legacy => {
                let digest = sys
                    .kernel
                    .read_to_string(init, "/etc/cups/passwd.md5")
                    .unwrap();
                assert!(digest.contains("alice:"));
            }
            SystemMode::Protego => {
                let frag = sys
                    .kernel
                    .read_to_string(init, "/etc/cups/passwds/alice")
                    .unwrap();
                assert!(frag.contains("alice:"));
                // bob cannot touch alice's fragment.
                let bob = sys.login("bob", "bobpw").unwrap();
                assert!(sys
                    .kernel
                    .append_file(bob, "/etc/cups/passwds/alice", b"evil")
                    .is_err());
            }
        }
    }
}

#[test]
fn ecryptfs_private_mount_for_owner_only() {
    for mode in [SystemMode::Legacy, SystemMode::Protego] {
        let mut sys = boot(mode);
        let alice = sys.login("alice", "alicepw").unwrap();
        let r = sys
            .run(alice, "/sbin/mount.ecryptfs_private", &[], &[])
            .unwrap();
        assert!(r.ok(), "{:?}: {}", mode, r.stdout);
        assert!(sys.kernel.vfs.find_mount("/home/alice/Private").is_some());
        // Another user cannot unmount alice's Private ("user" scope).
        let bob = sys.login("bob", "bobpw").unwrap();
        let r = sys
            .run(bob, "/bin/umount", &["/home/alice/Private"], &[])
            .unwrap();
        assert!(!r.ok(), "{:?}", mode);
        let r = sys
            .run(alice, "/bin/umount", &["/home/alice/Private"], &[])
            .unwrap();
        assert!(r.ok(), "{:?}: {}", mode, r.stdout);
    }
}
