//! Property tests for the credential-database formats (§4.4): totality on
//! hostile input and render/parse round-trips.

use proptest::prelude::*;
use userland::db::{parse_db, GroupEntry, GshadowEntry, PasswdEntry, ShadowEntry};

proptest! {
    #[test]
    fn parsers_are_total(line in "\\PC{0,120}") {
        let _ = PasswdEntry::parse(&line);
        let _ = ShadowEntry::parse(&line);
        let _ = GroupEntry::parse(&line);
        let _ = GshadowEntry::parse(&line);
    }

    #[test]
    fn passwd_roundtrip(
        name in "[a-z][a-z0-9-]{0,12}",
        uid in 0u32..70000,
        gid in 0u32..70000,
        gecos in "[a-zA-Z ,]{0,20}",
        shell in "(/bin/sh|/bin/bash|/usr/sbin/nologin)",
    ) {
        let e = PasswdEntry {
            name: name.clone(),
            uid,
            gid,
            gecos,
            home: format!("/home/{}", name),
            shell: shell.to_string(),
        };
        prop_assert_eq!(PasswdEntry::parse(&e.render()).unwrap(), e);
    }

    #[test]
    fn shadow_password_verification(name in "[a-z]{1,10}", pw in "[ -~]{1,20}", other in "[ -~]{1,20}") {
        let e = ShadowEntry::with_password(&name, &pw);
        let back = ShadowEntry::parse(&e.render()).unwrap();
        prop_assert!(back.verify(&pw));
        if other != pw {
            prop_assert!(!back.verify(&other));
        }
    }

    #[test]
    fn group_roundtrip(
        name in "[a-z][a-z0-9-]{0,10}",
        gid in 0u32..70000,
        members in prop::collection::vec("[a-z]{1,8}", 0..5),
    ) {
        let e = GroupEntry { name, gid, members };
        prop_assert_eq!(GroupEntry::parse(&e.render()).unwrap(), e);
    }

    /// A whole-database render survives a parse cycle entry-for-entry,
    /// with malformed interleaved lines dropped silently (the behaviour
    /// legacy tools rely on).
    #[test]
    fn database_with_garbage_lines(
        names in prop::collection::btree_set("[a-z]{2,8}", 1..6),
        garbage in "[^:\\n]{0,30}",
    ) {
        let mut text = String::new();
        for (i, n) in names.iter().enumerate() {
            text.push_str(&PasswdEntry {
                name: n.clone(),
                uid: 1000 + i as u32,
                gid: 1000 + i as u32,
                gecos: String::new(),
                home: format!("/home/{}", n),
                shell: "/bin/sh".into(),
            }.render());
            text.push('\n');
            text.push_str(&garbage);
            text.push('\n');
        }
        let entries = parse_db(&text, PasswdEntry::parse);
        prop_assert_eq!(entries.len(), names.len());
    }
}
