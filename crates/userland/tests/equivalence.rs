//! §5.3 functional equivalence: the same battery of commands, run on the
//! legacy (setuid) image and the Protego image, must produce the same
//! outcomes — success where success is expected, denial where denial is,
//! authentication failures alike.

use userland::suite::{run_functional_suite, run_service_suite};
use userland::{boot, SystemMode};

#[test]
fn functional_suite_outcomes_match_across_modes() {
    let mut legacy = boot(SystemMode::Legacy);
    let mut protego = boot(SystemMode::Protego);
    let a = run_functional_suite(&mut legacy);
    let b = run_functional_suite(&mut protego);
    assert_eq!(a.len(), b.len());
    let mut mismatches = Vec::new();
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.name, y.name);
        if x.ok != y.ok {
            mismatches.push(format!(
                "{}: legacy ok={} (code {}), protego ok={} (code {})",
                x.name, x.ok, x.code, y.ok, y.code
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "divergent steps:\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn expected_step_outcomes() {
    // Spot-check the semantics on Protego (the mode under study).
    let mut sys = boot(SystemMode::Protego);
    let results = run_functional_suite(&mut sys);
    let get = |name: &str| {
        results
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing step {}", name))
    };
    // Success cases.
    for name in [
        "mount-cdrom-alice",
        "umount-cdrom-alice",
        "mount-usb-bob",
        "umount-usb-by-other-ok",
        "ping-gateway",
        "traceroute",
        "sudo-carol-admin",
        "sudo-carol-recency",
        "sudo-bob-lpr-as-alice",
        "su-alice-to-bob",
        "newgrp-member",
        "newgrp-nonmember-password",
        "passwd-alice",
        "chsh-valid",
        "pppd-fresh-route",
        "dmcrypt-get-device",
        "ssh-keysign",
        "xorg-mode",
        "pkexec-carol",
        "dbus-activate-mta",
        "iptables-admin-add",
        "mount-before-eject",
        "eject-alice",
        "lppasswd-own",
        "ecryptfs-private-mount",
        "ecryptfs-private-umount",
        "chromium-sandbox",
    ] {
        assert!(get(name).ok, "{} should succeed: {:?}", name, get(name));
    }
    // Denial cases.
    for name in [
        "umount-cdrom-by-other-denied",
        "mount-over-etc-denied",
        "mount-missing-entry",
        "sudo-carol-wrong-password",
        "sudo-alice-not-in-sudoers",
        "sudo-bob-sh-as-alice-denied",
        "lpr-bob-direct-denied",
        "su-wrong-password",
        "sudoedit-bob-denied",
        "newgrp-nonmember-wrong",
        "newgrp-unprotected-denied",
        "gpasswd-nonadmin-denied",
        "passwd-alice-wrong-old",
        "passwd-bob-cannot-touch-alice",
        "chsh-invalid",
        "vipw-nonroot-denied",
        "login-wrong",
        "login-no-such-user",
        "pkexec-bob-denied",
        "dbus-unknown-service",
        "iptables-user-denied",
        "iptables-del-missing",
        "arping-no-reply",
    ] {
        assert!(!get(name).ok, "{} should be denied: {:?}", name, get(name));
    }
}

#[test]
fn service_suite_matches_across_modes() {
    let mut legacy = boot(SystemMode::Legacy);
    let mut protego = boot(SystemMode::Protego);
    let a = run_service_suite(&mut legacy);
    let b = run_service_suite(&mut protego);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.ok, y.ok, "{}: legacy={:?} protego={:?}", x.name, x, y);
    }
    // And the semantics: binds and deliveries work, the rogue fails.
    let get = |name: &str| b.iter().find(|s| s.name == name).unwrap();
    assert!(get("exim-bind-25").ok);
    assert!(get("smtp-deliver-alice").ok);
    assert!(get("httpd-bind-80").ok);
    assert!(get("http-get").ok);
    assert!(!get("rogue-port25-attempt").ok);
}

#[test]
fn coverage_exceeds_ninety_percent_like_table7() {
    // Run everything on both modes and merge coverage per binary — the
    // analogue of Table 7's >90% gcov rows.
    let mut merged = userland::coverage::Coverage::new();
    for mode in [SystemMode::Legacy, SystemMode::Protego] {
        let mut sys = boot(mode);
        run_functional_suite(&mut sys);
        run_service_suite(&mut sys);
        userland::suite::run_divergence_suite(&mut sys);
        merged.merge_from(&sys.coverage);
    }
    let report = merged.report();
    for bin in [
        "/bin/mount",
        "/bin/umount",
        "/bin/ping",
        "/usr/bin/sudo",
        "/bin/su",
        "/usr/bin/newgrp",
        "/usr/bin/passwd",
        "/usr/bin/chsh",
        "/usr/bin/gpasswd",
    ] {
        let row = report.iter().find(|r| r.binary == bin).unwrap();
        assert!(
            row.percent >= 80.0,
            "{}: only {:.1}% covered ({} of {}); missed: {:?}",
            bin,
            row.percent,
            row.hit,
            row.declared,
            merged.missed(bin)
        );
    }
}

#[test]
fn divergence_suite_shows_protego_advantages() {
    let mut legacy = boot(SystemMode::Legacy);
    let mut protego = boot(SystemMode::Protego);
    let a = userland::suite::run_divergence_suite(&mut legacy);
    let b = userland::suite::run_divergence_suite(&mut protego);
    let find = |v: &[userland::suite::StepOutcome], n: &str| {
        v.iter().find(|s| s.name == n).cloned().unwrap()
    };
    // A user-written ping: impossible on stock Linux, works on Protego.
    assert!(!find(&a, "myping-custom-tool").ok);
    assert!(find(&b, "myping-custom-tool").ok);
    // Hardening (removing the setuid bit) breaks ping on Linux only.
    assert!(!find(&a, "ping-without-setuid-bit").ok);
    assert!(find(&b, "ping-without-setuid-bit").ok);
    // Root can spoof TCP on stock Linux; nobody can on Protego.
    assert!(find(&a, "spoofed-tcp-from-raw-socket").ok);
    assert!(!find(&b, "spoofed-tcp-from-raw-socket").ok);
    // tcptraceroute works via setuid on legacy; on a stock Protego
    // policy its raw TCP probes are filtered until a refinement (§5.4).
    assert!(find(&a, "tcptraceroute-default-policy").ok);
    assert!(!find(&b, "tcptraceroute-default-policy").ok);
}
