//! Service-path edge cases: malformed SMTP, delivery failures, and
//! sequential HTTP service.

use sim_kernel::cred::{Gid, Uid};
use sim_kernel::net::{Domain, Ipv4, SockType};
use userland::bins::mail;
use userland::{boot, SystemMode};

fn protego_mta(sys: &mut userland::System) -> (sim_kernel::Pid, i32) {
    let session = sys.service_session(Uid(mail::MAIL_UID), Gid(8), "/bin/sh");
    let (pid, startup) = sys
        .spawn_service(session, "/usr/sbin/exim4", &["--daemon"])
        .unwrap();
    (pid, mail::parse_listen_fd(&startup).unwrap())
}

#[test]
fn malformed_smtp_gets_451_not_a_crash() {
    let mut sys = boot(SystemMode::Protego);
    let (mta, fd) = protego_mta(&mut sys);
    let bob = sys.login("bob", "bobpw").unwrap();
    let cli = sys
        .kernel
        .sys_socket(bob, Domain::Inet, SockType::Stream, 0)
        .unwrap();
    sys.kernel
        .sys_connect(bob, cli, Ipv4::LOOPBACK, 25)
        .unwrap();
    sys.kernel
        .sys_send(bob, cli, b"EHLO no recipient line at all")
        .unwrap();
    mail::exim_serve_one(&mut sys, mta, fd).unwrap();
    let reply = sys.kernel.sys_recv(bob, cli, 128).unwrap();
    assert!(String::from_utf8_lossy(&reply).starts_with("451"));
}

#[test]
fn delivery_to_unknown_user_fails_cleanly() {
    let mut sys = boot(SystemMode::Protego);
    let (mta, fd) = protego_mta(&mut sys);
    let bob = sys.login("bob", "bobpw").unwrap();
    let reply = mail::smtp_send(&mut sys, bob, mta, fd, "mallory", "hello?").unwrap();
    assert!(reply.starts_with("451"), "{}", reply);
}

#[test]
fn httpd_serves_many_sequential_requests() {
    let mut sys = boot(SystemMode::Protego);
    let session = sys.service_session(Uid(mail::WWW_UID), Gid(33), "/bin/sh");
    let (web, startup) = sys
        .spawn_service(session, "/usr/sbin/httpd", &["--daemon"])
        .unwrap();
    let fd = mail::parse_listen_fd(&startup).unwrap();
    let alice = sys.login("alice", "alicepw").unwrap();
    for _ in 0..50 {
        let resp = mail::http_get(&mut sys, alice, web, fd).unwrap();
        assert!(resp.contains("200 OK"));
    }
}

#[test]
fn second_mta_instance_cannot_double_bind() {
    let mut sys = boot(SystemMode::Protego);
    let (_mta, _fd) = protego_mta(&mut sys);
    // Even the *right* (binary, uid) instance hits EADDRINUSE once the
    // port is taken — policy passed, mechanism refused.
    let session = sys.service_session(Uid(mail::MAIL_UID), Gid(8), "/bin/sh");
    let (_, r) = sys
        .spawn_service(session, "/usr/sbin/exim4", &["--daemon"])
        .unwrap();
    assert!(!r.ok());
    assert!(r.stdout.contains("EADDRINUSE"), "{}", r.stdout);
}

#[test]
fn mail_lands_in_group_writable_spool_only() {
    let mut sys = boot(SystemMode::Protego);
    let (mta, fd) = protego_mta(&mut sys);
    let bob = sys.login("bob", "bobpw").unwrap();
    mail::smtp_send(&mut sys, bob, mta, fd, "bob", "note to self").unwrap();
    let init = sys.init_pid();
    let st = sys.kernel.sys_stat(init, "/var/mail/bob").unwrap();
    // The spool file stays owned by the recipient, group mail.
    assert_eq!(st.uid, Uid(1001));
    assert_eq!(st.gid, Gid(8));
    // carol cannot read bob's spool.
    let carol = sys.login("carol", "carolpw").unwrap();
    assert!(sys.kernel.read_to_string(carol, "/var/mail/bob").is_err());
}
