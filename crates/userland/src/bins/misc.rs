//! Interface-design casualties and leftovers (§4.5, §4.6, Table 4):
//! `dmcrypt-get-device`, `ssh-keysign`, `Xorg`, `pt_chown`, and the
//! `iptables` administration utility.

use super::{fail, CatalogItem};
use crate::system::{BinEntry, Proc, SystemMode};
use sim_kernel::error::Errno;
use sim_kernel::lsm::{sim_crypt, KmsOp};
use sim_kernel::net::{ProtoMatch, Rule, Verdict};
use sim_kernel::syscall::{IoctlCmd, IoctlOut, NetfilterOp, OpenFlags};

/// Catalog entries for this module.
pub fn catalog() -> Vec<CatalogItem> {
    vec![
        CatalogItem {
            path: "/usr/bin/dmcrypt-get-device",
            entry: BinEntry {
                func: dmcrypt_main,
                points: &["start", "ioctl_path", "sys_path", "denied"],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/usr/lib/ssh-keysign",
            entry: BinEntry {
                func: keysign_main,
                points: &["start", "key_read", "key_denied", "signed"],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/usr/bin/Xorg",
            entry: BinEntry {
                func: xorg_main,
                points: &[
                    "start",
                    "parse_args",
                    "mode_set",
                    "mode_denied",
                    "vt_switch",
                ],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/usr/lib/pt_chown",
            entry: BinEntry {
                func: pt_chown_main,
                points: &["start"],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/usr/lib/chromium-sandbox",
            entry: BinEntry {
                func: chromium_sandbox_main,
                points: &["start", "userns_ok", "userns_denied", "inner_ns"],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/sbin/iptables",
            entry: BinEntry {
                func: iptables_main,
                points: &["start", "append", "delete", "flush", "list", "denied"],
            },
            setuid: false,
        },
    ]
}

/// `dmcrypt-get-device <mapping>` — report the physical device backing an
/// encrypted mapping. The legacy path uses the all-or-nothing ioctl (and
/// therefore must be setuid root, holding the key material in memory);
/// Protego reads the `/sys` attribute that discloses topology only — the
/// paper's 4-line change (Table 2).
pub fn dmcrypt_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    let mapping = p
        .args
        .first()
        .cloned()
        .unwrap_or_else(|| "cryptohome".to_string());

    if p.sys.mode == SystemMode::Legacy {
        p.cov("ioctl_path");
        if !p.euid().is_root() {
            return fail(p, "dmcrypt-get-device", "must be setuid root", Errno::EPERM);
        }
        let fd = match p.open(&format!("/dev/mapper/{}", mapping), OpenFlags::read_only()) {
            Ok(fd) => fd,
            Err(e) => return fail(p, "dmcrypt-get-device", &mapping, e),
        };
        match p.os().ioctl(fd, IoctlCmd::DmStatus) {
            Ok(IoctlOut::Dm(status)) => {
                // The key material is now sitting in this process's
                // memory — the exposure Protego eliminates.
                p.vuln("ioctl_path");
                p.println(&status.physical_device);
                0
            }
            Ok(_) => 1,
            Err(e) => {
                p.cov("denied");
                fail(p, "dmcrypt-get-device", "DM_TABLE_STATUS", e)
            }
        }
    } else {
        p.cov("sys_path");
        match p.read_to_string("/sys/block/dm-0/protego_device") {
            Ok(dev) => {
                p.println(dev.trim());
                0
            }
            Err(e) => {
                p.cov("denied");
                fail(p, "dmcrypt-get-device", "sysfs", e)
            }
        }
    }
}

/// `ssh-keysign <data>` — signs `data` with the host private key. Legacy:
/// setuid root to read the 0600 key, then drops privilege. Protego: the
/// kernel's binary-identity rule admits exactly this binary (§4.6).
pub fn keysign_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    let data = p.args.join(" ");
    if p.sys.mode == SystemMode::Legacy && !p.euid().is_root() {
        return fail(p, "ssh-keysign", "must be setuid root", Errno::EPERM);
    }
    let key = match p.read_to_string("/etc/ssh/ssh_host_key") {
        Ok(k) => k,
        Err(e) => {
            p.cov("key_denied");
            return fail(p, "ssh-keysign", "host key", e);
        }
    };
    p.cov("key_read");
    if p.sys.mode == SystemMode::Legacy && p.euid().is_root() && !p.ruid().is_root() {
        let ruid = p.ruid();
        let _ = p.os().setuid(ruid);
    }
    let signature = sim_crypt(&key.trim().chars().take(2).collect::<String>(), &data);
    p.cov("signed");
    p.println(&format!("signature: {}", signature));
    0
}

/// `Xorg -mode <w> <h> [-vt <n>]` — sets the video mode and optionally
/// switches VTs. With a KMS driver the kernel does the privileged work
/// and no root is needed (§4.5); on a pre-KMS card the legacy setuid-root
/// binary pokes registers itself.
pub fn xorg_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    // Historical exploit site (CVE-2002-0517, CVE-2006-4447 class).
    p.vuln("parse_args");
    let mut width = 1280u32;
    let mut height = 1024u32;
    let mut vt: Option<u32> = None;
    let mut i = 0;
    let args = p.args.clone();
    while i < args.len() {
        match args[i].as_str() {
            "-mode" if i + 2 < args.len() => {
                width = args[i + 1].parse().unwrap_or(width);
                height = args[i + 2].parse().unwrap_or(height);
                i += 3;
            }
            "-vt" if i + 1 < args.len() => {
                vt = args[i + 1].parse().ok();
                i += 2;
            }
            _ => i += 1,
        }
    }
    let fd = match p.open("/dev/dri/card0", OpenFlags::read_write()) {
        Ok(fd) => fd,
        Err(e) => return fail(p, "Xorg", "/dev/dri/card0", e),
    };
    match p.os().ioctl(
        fd,
        IoctlCmd::Kms(KmsOp::SetMode {
            width,
            height,
            refresh: 60,
        }),
    ) {
        Ok(_) => p.cov("mode_set"),
        Err(e) => {
            p.cov("mode_denied");
            return fail(p, "Xorg", "mode set", e);
        }
    }
    if let Some(vt) = vt {
        if let Err(e) = p.os().ioctl(fd, IoctlCmd::Kms(KmsOp::VtSwitch { vt })) {
            return fail(p, "Xorg", "VT switch", e);
        }
        p.cov("vt_switch");
    }
    p.println(&format!("Xorg: {}x{} active", width, height));
    0
}

/// `chromium-sandbox` — sets up the browser's isolation namespaces
/// (§4.6). On pre-3.8 kernels this must be setuid root (the legacy
/// image); on kernels with unprivileged user namespaces it needs no
/// privilege at all — the policy became safe to expose, so the trusted
/// binary evaporated, exactly the paper's point about new interfaces.
pub fn chromium_sandbox_main(p: &mut Proc<'_>) -> i32 {
    use sim_kernel::task::NsKind;
    p.cov("start");
    if let Err(e) = p.os().unshare(NsKind::User) {
        p.cov("userns_denied");
        return fail(p, "chromium-sandbox", "user namespace", e);
    }
    p.cov("userns_ok");
    // Inside the user namespace, the sandbox builds its inner world.
    for kind in [NsKind::Mount, NsKind::Net, NsKind::Pid] {
        if let Err(e) = p.os().unshare(kind) {
            return fail(p, "chromium-sandbox", "inner namespace", e);
        }
    }
    p.cov("inner_ns");
    // The legacy helper drops privilege once the namespaces exist.
    if p.sys.mode == SystemMode::Legacy && p.euid().is_root() && !p.ruid().is_root() {
        let ruid = p.ruid();
        let _ = p.os().setuid(ruid);
    }
    p.println("chromium-sandbox: renderer isolated (user+mount+net+pid namespaces)");
    0
}

/// `pt_chown` — obsolete for 17 years but still shipped (Table 4): modern
/// kernels allocate pty slaves themselves, so this is a no-op.
pub fn pt_chown_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    p.println("pt_chown: nothing to do (pts allocated by the kernel)");
    0
}

/// `iptables` — administers the OUTPUT chain:
///
/// * `iptables -L`
/// * `iptables -F`
/// * `iptables -A <name> <icmp|tcp|udp|arp|any> <accept|drop>`
/// * `iptables -D <name>`
pub fn iptables_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    let args = p.args.clone();
    match args.first().map(String::as_str) {
        Some("-L") => {
            p.cov("list");
            let rules = match p.os().netfilter_list() {
                Ok(r) => r,
                Err(e) => return fail(p, "iptables", "list", e),
            };
            for r in rules {
                p.println(&r.to_string());
            }
            0
        }
        Some("-F") => match p.os().netfilter(NetfilterOp::Flush) {
            Ok(()) => {
                p.cov("flush");
                0
            }
            Err(e) => {
                p.cov("denied");
                fail(p, "iptables", "flush", e)
            }
        },
        Some("-A") if args.len() == 4 => {
            let proto = match args[2].as_str() {
                "icmp" => Some(ProtoMatch::Icmp),
                "tcp" => Some(ProtoMatch::Tcp),
                "udp" => Some(ProtoMatch::Udp),
                "arp" => Some(ProtoMatch::Arp),
                "any" => None,
                _ => {
                    p.println("iptables: unknown protocol");
                    return 2;
                }
            };
            let verdict = match args[3].as_str() {
                "accept" => Verdict::Accept,
                "drop" => Verdict::Drop,
                _ => {
                    p.println("iptables: unknown verdict");
                    return 2;
                }
            };
            let rule = Rule {
                name: args[1].clone(),
                raw_socket_only: true,
                proto,
                icmp_types: None,
                dst_ports: None,
                spoofed: None,
                verdict,
            };
            match p.os().netfilter(NetfilterOp::InsertFront(rule)) {
                Ok(()) => {
                    p.cov("append");
                    0
                }
                Err(e) => {
                    p.cov("denied");
                    fail(p, "iptables", "append", e)
                }
            }
        }
        Some("-D") if args.len() == 2 => {
            match p.os().netfilter(NetfilterOp::DeleteByName(args[1].clone())) {
                Ok(()) => {
                    p.cov("delete");
                    0
                }
                Err(e) => {
                    p.cov("denied");
                    fail(p, "iptables", "delete", e)
                }
            }
        }
        _ => {
            p.println("usage: iptables -L | -F | -A <name> <proto> <verdict> | -D <name>");
            2
        }
    }
}
