//! PolicyKit-style helpers: `pkexec` and `dbus-daemon-launch-helper`
//! (§4.3, Table 4's setuid/setgid row).
//!
//! `pkexec` runs a command as root for members of the admin group after
//! authentication — functionally a sudo sibling, and historically another
//! setuid-root attack surface (CVE-2011-1485 etc.). The D-Bus launch
//! helper is setuid root solely to start system services under their
//! service accounts; Protego encodes both as delegation rules.

use super::{fail, CatalogItem};
use crate::db::{parse_db, ShadowEntry};
use crate::system::{BinEntry, Proc, SystemMode};
use sim_kernel::cred::{Gid, Uid};
use sim_kernel::error::Errno;

/// Catalog entries for this module.
pub fn catalog() -> Vec<CatalogItem> {
    vec![
        CatalogItem {
            path: "/usr/bin/pkexec",
            entry: BinEntry {
                func: pkexec_main,
                points: &[
                    "parse_args",
                    "not_authorized",
                    "auth_fail",
                    "setuid_ok",
                    "setuid_fail",
                    "exec",
                ],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/usr/lib/dbus-daemon-launch-helper",
            entry: BinEntry {
                func: dbus_helper_main,
                points: &[
                    "parse_args",
                    "unknown_service",
                    "setuid_ok",
                    "setuid_fail",
                    "launch",
                ],
            },
            setuid: true,
        },
    ]
}

/// `pkexec <command> [args...]`.
pub fn pkexec_main(p: &mut Proc<'_>) -> i32 {
    p.vuln("parse_args");
    let (cmd, rest) = match p.args.split_first() {
        Some((c, r)) => (c.clone(), r.to_vec()),
        None => {
            p.println("usage: pkexec <command> [args...]");
            return 2;
        }
    };
    if p.sys.mode == SystemMode::Legacy {
        if !p.euid().is_root() {
            return fail(p, "pkexec", "must be setuid root", Errno::EPERM);
        }
        // polkit's "unix-group:admin" style authorization + invoker
        // password, all inside the trusted binary.
        let in_admin = p
            .sys
            .kernel
            .task(p.pid)
            .map(|t| t.cred.in_group(Gid(27)))
            .unwrap_or(false);
        if !p.ruid().is_root() && !in_admin {
            p.cov("not_authorized");
            p.println("pkexec: Not authorized");
            return 1;
        }
        if !p.ruid().is_root() {
            let uid = p.ruid();
            let name = {
                let passwd = p.read_to_string("/etc/passwd").unwrap_or_default();
                parse_db(&passwd, crate::db::PasswdEntry::parse)
                    .into_iter()
                    .find(|e| e.uid == uid.0)
                    .map(|e| e.name)
                    .unwrap_or_default()
            };
            let ok = {
                let attempt = p.read_tty();
                let shadow = p.read_to_string("/etc/shadow").unwrap_or_default();
                parse_db(&shadow, ShadowEntry::parse)
                    .iter()
                    .find(|e| e.name == name)
                    .zip(attempt)
                    .map(|(e, a)| e.verify(&a))
                    .unwrap_or(false)
            };
            if !ok {
                p.cov("auth_fail");
                p.println("pkexec: Authentication failure");
                return 1;
            }
        }
        if let Err(e) = p.os().setuid(Uid::ROOT) {
            p.cov("setuid_fail");
            return fail(p, "pkexec", "setuid", e);
        }
    } else {
        match p.os().setuid(Uid::ROOT) {
            Ok(()) => {}
            Err(e) => {
                p.cov("setuid_fail");
                p.println(&format!("pkexec: Not authorized ({})", e));
                return 1;
            }
        }
    }
    p.cov("setuid_ok");
    p.cov("exec");
    let argv: Vec<&str> = rest.iter().map(String::as_str).collect();
    p.exec(&cmd, &argv)
}

/// Known D-Bus-activated services: name → (binary, service uid).
const SERVICES: &[(&str, &str, u32)] = &[("mta", "/usr/sbin/exim4", 8)];

/// `dbus-daemon-launch-helper <service>` — starts a whitelisted service
/// under its service account.
pub fn dbus_helper_main(p: &mut Proc<'_>) -> i32 {
    p.vuln("parse_args");
    let service = match p.args.first() {
        Some(s) => s.clone(),
        None => {
            p.println("usage: dbus-daemon-launch-helper <service>");
            return 2;
        }
    };
    let (_, binary, uid) = match SERVICES.iter().find(|(n, _, _)| *n == service) {
        Some(s) => *s,
        None => {
            p.cov("unknown_service");
            return fail(p, "dbus-daemon-launch-helper", &service, Errno::ENOENT);
        }
    };
    if p.sys.mode == SystemMode::Legacy && !p.euid().is_root() {
        return fail(
            p,
            "dbus-daemon-launch-helper",
            "must be setuid root",
            Errno::EPERM,
        );
    }
    match p.os().setuid(Uid(uid)) {
        Ok(()) => p.cov("setuid_ok"),
        Err(e) => {
            p.cov("setuid_fail");
            return fail(p, "dbus-daemon-launch-helper", "setuid", e);
        }
    }
    p.cov("launch");
    p.exec(binary, &["--daemon"])
}
