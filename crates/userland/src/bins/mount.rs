//! The mount utilities: `mount`, `umount`, `fusermount`, `eject`.
//!
//! Figure 1's running example. The legacy variants are setuid-to-root and
//! enforce `/etc/fstab`'s `user`/`users` options themselves before issuing
//! the privileged system call; the Protego variants simply issue the call
//! and let the kernel whitelist decide (the paper's `-25` lines of
//! hard-coded root checks).

use super::{fail, CatalogItem};
use crate::system::{BinEntry, Proc, SystemMode};
use protego_core::fstab::{parse_fstab, FstabEntry};
use sim_kernel::cred::Uid;
use sim_kernel::error::Errno;
use sim_kernel::syscall::{IoctlCmd, OpenFlags};
use sim_kernel::vfs::Mode;

/// Catalog entries for this module.
pub fn catalog() -> Vec<CatalogItem> {
    vec![
        CatalogItem {
            path: "/bin/mount",
            entry: BinEntry {
                func: mount_main,
                points: &[
                    "start",
                    "parse_options",
                    "fstab_entry",
                    "fstab_missing",
                    "legacy_user_check_pass",
                    "legacy_user_check_fail",
                    "syscall_ok",
                    "syscall_fail",
                    "mtab_update",
                ],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/bin/umount",
            entry: BinEntry {
                func: umount_main,
                points: &[
                    "start",
                    "parse_args",
                    "legacy_user_check_pass",
                    "legacy_user_check_fail",
                    "syscall_ok",
                    "syscall_fail",
                ],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/bin/fusermount",
            entry: BinEntry {
                func: fusermount_main,
                points: &["start", "syscall_ok", "syscall_fail"],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/usr/bin/eject",
            entry: BinEntry {
                func: eject_main,
                points: &["start", "umount_first", "eject_ok", "eject_fail"],
            },
            setuid: true,
        },
    ]
}

fn read_fstab(p: &mut Proc<'_>) -> Vec<FstabEntry> {
    p.read_to_string("/etc/fstab")
        .map(|t| parse_fstab(&t).0)
        .unwrap_or_default()
}

/// `mount <mountpoint>` (fstab lookup) or `mount <source> <mountpoint>
/// <fstype> [options]`.
pub fn mount_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    let args = p.args.clone();
    let (source, target, fstype, mut options) = match args.len() {
        1 => {
            let entries = read_fstab(p);
            match entries.iter().find(|e| e.mountpoint == args[0]) {
                Some(e) => {
                    p.cov("fstab_entry");
                    (
                        e.device.clone(),
                        e.mountpoint.clone(),
                        e.fstype.clone(),
                        e.options.join(","),
                    )
                }
                None => {
                    p.cov("fstab_missing");
                    return fail(p, "mount", &args[0], Errno::ENOENT);
                }
            }
        }
        2..=4 => (
            args[0].clone(),
            args[1].clone(),
            args.get(2).cloned().unwrap_or_else(|| "auto".into()),
            args.get(3).cloned().unwrap_or_default(),
        ),
        _ => {
            p.println("usage: mount <mountpoint> | mount <source> <target> [fstype] [options]");
            return 2;
        }
    };
    // Historical exploit site: option-string parsing (CVE-2006-2183 class).
    p.vuln("parse_options");

    if p.sys.mode == SystemMode::Legacy {
        // The setuid binary's own policy enforcement.
        if !p.euid().is_root() {
            return fail(p, "mount", "must be setuid root", Errno::EPERM);
        }
        if !p.ruid().is_root() {
            let entries = read_fstab(p);
            let permitted = entries
                .iter()
                .any(|e| e.device == source && e.mountpoint == target && e.user_mountable());
            if !permitted {
                p.cov("legacy_user_check_fail");
                return fail(p, "mount", "only root can do that", Errno::EPERM);
            }
            p.cov("legacy_user_check_pass");
            // Mount-binary-enforced hardening for user mounts.
            if !options.is_empty() {
                options.push(',');
            }
            options.push_str("nosuid,nodev");
        }
    }

    match p.os().mount(&source, &target, &fstype, &options) {
        Ok(()) => {
            p.cov("syscall_ok");
            if p.sys.mode == SystemMode::Legacy {
                p.cov("mtab_update");
                let line = format!("{} {} {} {}\n", source, target, fstype, options);
                let _ = p.append_file("/etc/mtab", line.as_bytes());
            }
            p.println(&format!("mounted {} on {}", source, target));
            0
        }
        Err(e) => {
            p.cov("syscall_fail");
            fail(p, "mount", &target, e)
        }
    }
}

/// `umount <mountpoint>`.
pub fn umount_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    // Historical exploit site: argument handling in the setuid binary
    // (CVE-2007-5191 class).
    p.vuln("parse_args");
    let target = match p.args.first() {
        Some(t) => t.clone(),
        None => {
            p.println("usage: umount <mountpoint>");
            return 2;
        }
    };
    if p.sys.mode == SystemMode::Legacy {
        if !p.euid().is_root() {
            return fail(p, "umount", "must be setuid root", Errno::EPERM);
        }
        if !p.ruid().is_root() {
            // Real umount(8) consults the mount table before its own
            // policy gate: a target that is not mounted at all reports
            // the syscall's EINVAL — exactly what the non-setuid
            // Protego binary reports — not "only root can do that".
            // (Checking policy first was a fuzzer-surfaced divergence.)
            let mount = p.sys.kernel.vfs.find_mount(&target);
            if let Some(m) = mount {
                // The legacy binary re-derives policy from fstab and mtab.
                let entries = read_fstab(p);
                let fstab_ok = entries
                    .iter()
                    .any(|e| e.mountpoint == target && e.user_mountable());
                let users_ok = entries
                    .iter()
                    .any(|e| e.mountpoint == target && e.has_option("users"));
                let mounted_by_me = m.mounted_by == p.ruid();
                if !(fstab_ok && (users_ok || mounted_by_me)) {
                    p.cov("legacy_user_check_fail");
                    return fail(p, "umount", "only root can do that", Errno::EPERM);
                }
                p.cov("legacy_user_check_pass");
            }
        }
    }
    match p.os().umount(&target) {
        Ok(()) => {
            p.cov("syscall_ok");
            p.println(&format!("unmounted {}", target));
            0
        }
        Err(e) => {
            p.cov("syscall_fail");
            fail(p, "umount", &target, e)
        }
    }
}

/// `fusermount <mountpoint>` — mounts a FUSE filesystem at a directory the
/// user owns.
pub fn fusermount_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    let target = match p.args.first() {
        Some(t) => t.clone(),
        None => {
            p.println("usage: fusermount <mountpoint>");
            return 2;
        }
    };
    if p.sys.mode == SystemMode::Legacy && !p.euid().is_root() {
        return fail(p, "fusermount", "must be setuid root", Errno::EPERM);
    }
    if p.sys.mode == SystemMode::Legacy && !p.ruid().is_root() {
        // The legacy binary insists the user owns the mountpoint.
        match p.os().stat(&target) {
            Ok(st) if st.uid == p.ruid() => {}
            Ok(_) => return fail(p, "fusermount", "mountpoint not owned by you", Errno::EPERM),
            Err(e) => return fail(p, "fusermount", &target, e),
        }
    }
    match p.os().mount("fuse", &target, "fuse", "rw") {
        Ok(()) => {
            p.cov("syscall_ok");
            p.println(&format!("fuse mounted on {}", target));
            0
        }
        Err(e) => {
            p.cov("syscall_fail");
            fail(p, "fusermount", &target, e)
        }
    }
}

/// `eject [device]` — unmounts (if mounted) and ejects removable media.
pub fn eject_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    let device = p
        .args
        .first()
        .cloned()
        .unwrap_or_else(|| "/dev/cdrom".to_string());
    // Unmount any mount backed by the device first.
    let mounted_at = p
        .sys
        .kernel
        .vfs
        .mounts()
        .iter()
        .find(|m| m.source == device)
        .map(|m| m.mountpoint.clone());
    if let Some(at) = mounted_at {
        p.cov("umount_first");
        if let Err(e) = p.os().umount(&at) {
            return fail(p, "eject", &at, e);
        }
    }
    let fd = match p.open(&device, OpenFlags::read_only()) {
        Ok(fd) => fd,
        Err(e) => return fail(p, "eject", &device, e),
    };
    match p.os().ioctl(fd, IoctlCmd::Eject) {
        Ok(_) => {
            p.cov("eject_ok");
            p.println(&format!("ejected {}", device));
            let _ = p.os().close(fd);
            0
        }
        Err(e) => {
            p.cov("eject_fail");
            let _ = p.os().close(fd);
            fail(p, "eject", &device, e)
        }
    }
}

/// Ensures `/etc/mtab` exists with sane permissions (image builder helper).
pub fn init_mtab(kernel: &sim_kernel::Kernel) -> sim_kernel::KResult<()> {
    kernel
        .vfs
        .install_file(
            "/etc/mtab",
            b"",
            Mode(0o644),
            Uid::ROOT,
            sim_kernel::cred::Gid::ROOT,
        )
        .map(|_| ())
}
