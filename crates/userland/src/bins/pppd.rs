//! `pppd` — the point-to-point protocol daemon (§4.1.2).
//!
//! Requires privilege on stock Linux for two tasks: configuring the modem
//! line and adding routes for the PPP link. The legacy binary is setuid
//! root so it can be launched on demand; under Protego the kernel admits
//! safe modem options on an unused line and route additions that do not
//! conflict with existing routes.

use super::{fail, CatalogItem};
use crate::system::{BinEntry, Proc, SystemMode};
use sim_kernel::cred::Uid;
use sim_kernel::dev::ModemOpt;
use sim_kernel::error::Errno;
use sim_kernel::net::{Ipv4, Route};
use sim_kernel::syscall::{IoctlCmd, OpenFlags, RouteOp};

/// Catalog entries for this module.
pub fn catalog() -> Vec<CatalogItem> {
    vec![CatalogItem {
        path: "/usr/sbin/pppd",
        entry: BinEntry {
            func: pppd_main,
            points: &[
                "start",
                "parse_options",
                "line_busy",
                "modem_configured",
                "modem_denied",
                "route_added",
                "route_conflict",
                "route_denied",
                "up",
            ],
        },
        setuid: true,
    }]
}

/// `pppd <remote-network> <prefix>` — brings up a PPP link: claims the
/// line, sets safe options, and routes the remote network over ppp0.
pub fn pppd_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    // Historical exploit site: option-file parsing (CVE-2004-1002 class).
    p.vuln("parse_options");

    let (dest, prefix) = match (
        p.args.first().and_then(|a| Ipv4::parse(a)),
        p.args.get(1).and_then(|a| a.parse::<u8>().ok()),
    ) {
        (Some(d), Some(pr)) => (d, pr),
        _ => {
            p.println("usage: pppd <remote-network> <prefix>");
            return 2;
        }
    };

    if p.sys.mode == SystemMode::Legacy && !p.euid().is_root() {
        return fail(p, "pppd", "must be setuid root", Errno::EPERM);
    }

    let fd = match p.open("/dev/ttyS0", OpenFlags::read_write()) {
        Ok(fd) => fd,
        Err(e) => return fail(p, "pppd", "/dev/ttyS0", e),
    };
    if let Err(e) = p.os().ioctl(fd, IoctlCmd::ModemClaim) {
        p.cov("line_busy");
        return fail(p, "pppd", "line busy", e);
    }

    // Safe session options: baud rate and VJ compression.
    for opt in [ModemOpt::Baud(115_200), ModemOpt::Compression(true)] {
        if let Err(e) = p.os().ioctl(fd, IoctlCmd::Modem(opt)) {
            p.cov("modem_denied");
            let _ = p.os().ioctl(fd, IoctlCmd::ModemRelease);
            return fail(p, "pppd", "modem configuration", e);
        }
    }
    p.cov("modem_configured");

    // Route the remote network over the link.
    let route = Route {
        dest,
        prefix,
        gateway: None,
        dev: "ppp0".into(),
        created_by: p.ruid(),
    };
    match p.os().ioctl_route(RouteOp::Add(route)) {
        Ok(()) => p.cov("route_added"),
        Err(Errno::EEXIST) => {
            // A duplicate route: the link still comes up as a plain tty
            // to the remote point (Table 4's fallback), without touching
            // routing state.
            p.cov("route_conflict");
            p.println("pppd: route exists; link restricted to tty access");
            p.cov("up");
            p.println("pppd: link up on /dev/ttyS0 (no route)");
            return 0;
        }
        Err(e) => {
            p.cov("route_denied");
            let _ = p.os().ioctl(fd, IoctlCmd::ModemRelease);
            return fail(p, "pppd", "route", e);
        }
    }

    // The legacy daemon would now drop privilege for the session loop.
    if p.sys.mode == SystemMode::Legacy && p.euid().is_root() && !p.ruid().is_root() {
        let ruid = p.ruid();
        let _ = p.os().setuid(ruid);
    }

    p.cov("up");
    p.println(&format!("pppd: link up, {}/{} via ppp0", dest, prefix));
    0
}

/// Tears down a pppd link created by `pid` (helper used by tests).
pub fn pppd_down(p: &mut Proc<'_>, dest: Ipv4, prefix: u8) -> Result<(), Errno> {
    p.sys
        .kernel
        .sys_ioctl_route(p.pid, RouteOp::Del { dest, prefix })
}

/// The uid pppd runs under after dropping privilege in legacy mode — kept
/// for symmetry with the paper's description of privilege bracketing.
pub const PPPD_RUN_UID: Uid = Uid(0);
