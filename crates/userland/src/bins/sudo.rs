//! Delegation utilities: `sudo`, `su`, `sudoedit`, and the harmless
//! delegation targets `lpr`, `editor`, and `id` (§4.3).
//!
//! The legacy `sudo` is the canonical violation of least privilege: it
//! starts with *all* of root (via the setuid bit), and only then checks
//! `/etc/sudoers`, the 5-minute timestamp, and the password. The Protego
//! variant starts with nothing and asks the kernel, which grants exactly
//! the configured transition — for command-restricted rules, only at
//! `exec` of a permitted binary.

use super::{fail, CatalogItem};
use crate::db::{parse_db, PasswdEntry, ShadowEntry};
use crate::system::{BinEntry, Proc, SystemMode};
use protego_core::policy::{AuthReq, CmdSpec, Principal, Target};
use protego_core::sudoers::{parse_sudoers, MapResolver};
use sim_kernel::cred::{Gid, Uid};
use sim_kernel::error::Errno;
use sim_kernel::vfs::Mode;

/// Catalog entries for this module.
pub fn catalog() -> Vec<CatalogItem> {
    vec![
        CatalogItem {
            path: "/usr/bin/sudo",
            entry: BinEntry {
                func: sudo_main,
                points: &[
                    "start",
                    "parse_env",
                    "legacy_rule_hit",
                    "legacy_rule_miss",
                    "legacy_ticket_fresh",
                    "legacy_prompt",
                    "legacy_auth_fail",
                    "legacy_cmd_denied",
                    "setuid_ok",
                    "setuid_fail",
                    "exec",
                ],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/bin/su",
            entry: BinEntry {
                func: su_main,
                points: &[
                    "start",
                    "parse_args",
                    "legacy_prompt",
                    "legacy_auth_fail",
                    "setuid_ok",
                    "setuid_fail",
                    "shell",
                ],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/usr/bin/sudoedit",
            entry: BinEntry {
                func: sudoedit_main,
                points: &["start", "parse_args", "edit_ok", "edit_fail"],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/usr/bin/editor",
            entry: BinEntry {
                func: editor_main,
                points: &["start", "write_ok", "write_fail"],
            },
            setuid: false,
        },
        CatalogItem {
            path: "/usr/bin/lpr",
            entry: BinEntry {
                func: lpr_main,
                points: &["start", "queued", "queue_fail"],
            },
            setuid: false,
        },
        CatalogItem {
            path: "/bin/id",
            entry: BinEntry {
                func: id_main,
                points: &["start"],
            },
            setuid: false,
        },
    ]
}

/// Looks a user up by name in `/etc/passwd`.
pub fn lookup_user(p: &mut Proc<'_>, name: &str) -> Option<PasswdEntry> {
    let text = p.read_to_string("/etc/passwd").ok()?;
    parse_db(&text, PasswdEntry::parse)
        .into_iter()
        .find(|e| e.name == name)
}

fn lookup_uid(p: &mut Proc<'_>, uid: Uid) -> Option<PasswdEntry> {
    let text = p.read_to_string("/etc/passwd").ok()?;
    parse_db(&text, PasswdEntry::parse)
        .into_iter()
        .find(|e| e.uid == uid.0)
}

fn resolver(p: &mut Proc<'_>) -> MapResolver {
    let mut r = MapResolver::default();
    if let Ok(text) = p.read_to_string("/etc/passwd") {
        for e in parse_db(&text, PasswdEntry::parse) {
            r.users.push((e.name, e.uid));
        }
    }
    if let Ok(text) = p.read_to_string("/etc/group") {
        for e in parse_db(&text, crate::db::GroupEntry::parse) {
            r.groups.push((e.name, e.gid));
        }
    }
    r
}

fn verify_password(p: &mut Proc<'_>, name: &str) -> bool {
    let attempt = match p.read_tty() {
        Some(a) => a,
        None => return false,
    };
    let shadow = match p.read_to_string("/etc/shadow") {
        Ok(s) => s,
        Err(_) => return false,
    };
    parse_db(&shadow, ShadowEntry::parse)
        .iter()
        .find(|e| e.name == name)
        .map(|e| e.verify(&attempt))
        .unwrap_or(false)
}

/// Strips dangerous environment variables, keeping only a safe base plus
/// the explicitly kept names — legacy sudo's userspace sanitization.
fn sanitize_env(p: &mut Proc<'_>, keep: &[String]) {
    if let Ok(mut t) = p.sys.kernel.task_mut(p.pid) {
        t.env
            .retain(|(k, _)| k == "PATH" || k == "TERM" || keep.iter().any(|x| x == k));
    }
}

/// `sudo [-u user] <command> [args...]`.
pub fn sudo_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    // Historical exploit site: environment handling before sanitization
    // (CVE-2002-0184, CVE-2009-0034 class).
    p.vuln("parse_env");

    let mut args = p.args.clone();
    let mut target_name = "root".to_string();
    if args.first().map(String::as_str) == Some("-u") {
        if args.len() < 2 {
            p.println("usage: sudo [-u user] command [args...]");
            return 2;
        }
        target_name = args[1].clone();
        args.drain(..2);
    }
    let (cmd, cmd_args) = match args.split_first() {
        Some((c, rest)) => (c.clone(), rest.to_vec()),
        None => {
            p.println("usage: sudo [-u user] command [args...]");
            return 2;
        }
    };
    let target = match lookup_user(p, &target_name) {
        Some(u) => u,
        None => {
            return fail(
                p,
                "sudo",
                &format!("unknown user: {}", target_name),
                Errno::EINVAL,
            )
        }
    };
    let invoker = p.ruid();
    let invoker_entry = lookup_uid(p, invoker);

    if p.sys.mode == SystemMode::Legacy {
        if !p.euid().is_root() {
            return fail(p, "sudo", "must be setuid root", Errno::EPERM);
        }
        // --- All policy lives here, inside the trusted binary. ---
        let res = resolver(p);
        let sudoers = p.read_to_string("/etc/sudoers").unwrap_or_default();
        let (rules, _) = parse_sudoers(&sudoers, &res);
        let groups: Vec<u32> = p
            .sys
            .kernel
            .task(p.pid)
            .map(|t| t.cred.groups.iter().map(|g| g.0).collect())
            .unwrap_or_default();
        let rule = rules.iter().find(|r| {
            let from_ok = match r.from {
                Principal::Any => true,
                Principal::Uid(u) => u == invoker.0,
                Principal::Gid(g) => groups.contains(&g),
            };
            let target_ok = match r.target {
                Target::Any => true,
                Target::Uid(u) => u == target.uid,
            };
            from_ok && target_ok
        });
        let rule = match rule {
            Some(r) => r.clone(),
            None => {
                p.cov("legacy_rule_miss");
                p.println(&format!(
                    "sudo: {} is not in the sudoers file. This incident will be reported.",
                    invoker_entry
                        .map(|e| e.name)
                        .unwrap_or_else(|| invoker.0.to_string())
                ));
                return 1;
            }
        };
        p.cov("legacy_rule_hit");
        if rule.cmd != CmdSpec::Any {
            let allowed = match &rule.cmd {
                CmdSpec::List(l) => l.iter().any(|c| c == &cmd),
                CmdSpec::Any => true,
            };
            if !allowed {
                p.cov("legacy_cmd_denied");
                p.println(&format!("sudo: user not allowed to run {}", cmd));
                return 1;
            }
        }
        if rule.auth == AuthReq::Invoker {
            // The 5-minute timestamp ticket, in userspace.
            let name = res
                .users
                .iter()
                .find(|(_, u)| *u == invoker.0)
                .map(|(n, _)| n.clone())
                .unwrap_or_default();
            let ticket = format!("/var/lib/sudo/{}", name);
            let now = p.sys.kernel.clock();
            let fresh = p
                .read_to_string(&ticket)
                .ok()
                .and_then(|s| s.trim().parse::<u64>().ok())
                .map(|t| now.saturating_sub(t) <= 300)
                .unwrap_or(false);
            if fresh {
                p.cov("legacy_ticket_fresh");
            } else {
                p.cov("legacy_prompt");
                if !verify_password(p, &name) {
                    p.cov("legacy_auth_fail");
                    p.println("sudo: 1 incorrect password attempt");
                    return 1;
                }
                let _ = p.write_file(&ticket, now.to_string().as_bytes(), Mode(0o600));
            }
        }
        sanitize_env(p, &rule.keep_env);
        // Only now does the (already root) process pin its uids.
        if let Err(e) = p.os().setuid(Uid(target.uid)) {
            p.cov("setuid_fail");
            return fail(p, "sudo", "setuid", e);
        }
        p.cov("setuid_ok");
    } else {
        // --- Protego: one system call; the kernel runs the policy. ---
        match p.os().setuid(Uid(target.uid)) {
            Ok(()) => p.cov("setuid_ok"),
            Err(e) => {
                p.cov("setuid_fail");
                p.println(&format!("sudo: {} (kernel policy)", e));
                return 1;
            }
        }
    }

    p.cov("exec");
    let argv: Vec<&str> = cmd_args.iter().map(String::as_str).collect();
    p.exec(&cmd, &argv)
}

/// `su [user] [-c command args...]` — become another user by proving
/// *their* password.
pub fn su_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    // Historical exploit site (CVE-2000-0996, CVE-2002-0816 class).
    p.vuln("parse_args");
    let mut args = p.args.clone();
    let target_name = if !args.is_empty() && args[0] != "-c" {
        args.remove(0)
    } else {
        "root".to_string()
    };
    let cmd = if args.first().map(String::as_str) == Some("-c") {
        args.drain(..1);
        args.clone()
    } else {
        Vec::new()
    };
    let target = match lookup_user(p, &target_name) {
        Some(u) => u,
        None => {
            return fail(
                p,
                "su",
                &format!("unknown user {}", target_name),
                Errno::EINVAL,
            )
        }
    };

    if p.sys.mode == SystemMode::Legacy {
        if !p.euid().is_root() {
            return fail(p, "su", "must be setuid root", Errno::EPERM);
        }
        p.cov("legacy_prompt");
        if !verify_password(p, &target_name) {
            p.cov("legacy_auth_fail");
            p.println("su: Authentication failure");
            return 1;
        }
        if let Err(e) = p.os().setuid(Uid(target.uid)) {
            p.cov("setuid_fail");
            return fail(p, "su", "setuid", e);
        }
    } else {
        match p.os().setuid(Uid(target.uid)) {
            Ok(()) => {}
            Err(e) => {
                p.cov("setuid_fail");
                p.println(&format!("su: Authentication failure ({})", e));
                return 1;
            }
        }
    }
    p.cov("setuid_ok");
    sanitize_env(p, &[]);
    if cmd.is_empty() {
        p.cov("shell");
        let (r, e) = (p.ruid().0, p.euid().0);
        p.println(&format!("su: uid={} euid={}", r, e));
        0
    } else {
        let argv: Vec<&str> = cmd[1..].iter().map(String::as_str).collect();
        p.exec(&cmd[0], &argv)
    }
}

/// `sudoedit <file>` — edit a file with root privilege, restricted to the
/// editor binary.
pub fn sudoedit_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    // Historical exploit site (CVE-2004-1689 class).
    p.vuln("parse_args");
    let file = match p.args.first() {
        Some(f) => f.clone(),
        None => {
            p.println("usage: sudoedit <file>");
            return 2;
        }
    };
    if p.sys.mode == SystemMode::Legacy {
        if !p.euid().is_root() {
            return fail(p, "sudoedit", "must be setuid root", Errno::EPERM);
        }
        // Legacy sudoedit consults sudoers like sudo; abbreviated here to
        // the admin-group check.
        let in_admin = p
            .sys
            .kernel
            .task(p.pid)
            .map(|t| t.cred.in_group(Gid(27)))
            .unwrap_or(false);
        if !p.ruid().is_root() && !in_admin {
            return fail(p, "sudoedit", "not permitted", Errno::EPERM);
        }
        let root = Uid::ROOT;
        if let Err(e) = p.os().setuid(root) {
            return fail(p, "sudoedit", "setuid", e);
        }
    } else if let Err(e) = p.os().setuid(Uid::ROOT) {
        p.cov("edit_fail");
        return fail(p, "sudoedit", "kernel policy", e);
    }
    let code = p.exec("/usr/bin/editor", &[&file]);
    if code == 0 {
        p.cov("edit_ok");
    } else {
        p.cov("edit_fail");
    }
    code
}

/// `editor <file>` — appends an audit line (our stand-in for editing).
pub fn editor_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    let file = match p.args.first() {
        Some(f) => f.clone(),
        None => {
            p.println("usage: editor <file>");
            return 2;
        }
    };
    let line = format!("# edited by uid {}\n", p.euid().0);
    match p.append_file(&file, line.as_bytes()) {
        Ok(()) => {
            p.cov("write_ok");
            p.println(&format!("edited {}", file));
            0
        }
        Err(e) => {
            p.cov("write_fail");
            fail(p, "editor", &file, e)
        }
    }
}

/// `lpr <text>` — queues a print job under the *effective* user's
/// credentials (the delegation target of the Alice/Bob example).
pub fn lpr_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    let text = p.args.join(" ");
    let line = format!("job uid={}: {}\n", p.euid().0, text);
    match p.append_file("/var/spool/lpd/queue", line.as_bytes()) {
        Ok(()) => {
            p.cov("queued");
            p.println("lpr: job queued");
            0
        }
        Err(e) => {
            p.cov("queue_fail");
            fail(p, "lpr", "queue", e)
        }
    }
}

/// `id` — prints real/effective ids and groups.
pub fn id_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    // Copy the line out before printing: the task guard must not be held
    // across p.println, which borrows the process (and kernel) mutably.
    let line = {
        let t = match p.sys.kernel.task(p.pid) {
            Ok(t) => t,
            Err(e) => return e.as_errno_i32(),
        };
        let groups: Vec<String> = t.cred.groups.iter().map(|g| g.0.to_string()).collect();
        format!(
            "uid={} euid={} gid={} egid={} groups={}",
            t.cred.ruid.0,
            t.cred.euid.0,
            t.cred.rgid.0,
            t.cred.egid.0,
            groups.join(",")
        )
    };
    p.println(&line);
    0
}
