//! Credential-database utilities: `passwd`, `chsh`, `chfn`, `vipw`, and
//! `login` (§4.4).
//!
//! Legacy variants are setuid-to-root because the kernel enforces access
//! only at whole-file granularity on `/etc/passwd` and `/etc/shadow`.
//! Protego fragments the databases into per-account files matching DAC
//! granularity; the same utilities then run without privilege, and the
//! monitoring daemon keeps the legacy files synchronized.

use super::{fail, CatalogItem};
use crate::db::{parse_db, render_db, PasswdEntry, ShadowEntry};
use crate::system::{BinEntry, Proc, SystemMode};
use sim_kernel::cred::Uid;
use sim_kernel::error::Errno;
use sim_kernel::vfs::Mode;

/// Catalog entries for this module.
pub fn catalog() -> Vec<CatalogItem> {
    vec![
        CatalogItem {
            path: "/usr/bin/passwd",
            entry: BinEntry {
                func: passwd_main,
                points: &[
                    "start",
                    "parse_args",
                    "legacy_prompt",
                    "legacy_auth_fail",
                    "legacy_rewrite",
                    "protego_reauth_read",
                    "protego_fragment_write",
                    "root_sets_other",
                    "deny_other",
                    "write_fail",
                ],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/usr/bin/chsh",
            entry: BinEntry {
                func: chsh_main,
                points: &[
                    "start",
                    "parse_args",
                    "invalid_shell",
                    "legacy_rewrite",
                    "protego_fragment_write",
                    "write_fail",
                ],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/usr/bin/chfn",
            entry: BinEntry {
                func: chfn_main,
                points: &[
                    "start",
                    "parse_args",
                    "legacy_rewrite",
                    "protego_fragment_write",
                    "write_fail",
                ],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/usr/sbin/vipw",
            entry: BinEntry {
                func: vipw_main,
                points: &[
                    "start",
                    "not_root",
                    "legacy_edit",
                    "protego_edit",
                    "no_user",
                ],
            },
            setuid: false,
        },
        CatalogItem {
            path: "/bin/login",
            entry: BinEntry {
                func: login_main,
                points: &["start", "auth_ok", "auth_fail", "no_user"],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/bin/sh",
            entry: BinEntry {
                func: sh_main,
                points: &["start"],
            },
            setuid: false,
        },
    ]
}

fn my_entry(p: &mut Proc<'_>) -> Option<PasswdEntry> {
    let uid = p.ruid();
    let text = p.read_to_string("/etc/passwd").ok()?;
    parse_db(&text, PasswdEntry::parse)
        .into_iter()
        .find(|e| e.uid == uid.0)
}

/// Atomically replaces a shared database file: write the new content to
/// a temporary sibling, then `rename(2)` over the original — the classic
/// pattern that keeps a crashed rewriter from truncating /etc/passwd.
fn atomic_replace(p: &mut Proc<'_>, path: &str, content: &str, mode: Mode) -> Result<(), Errno> {
    let tmp = format!("{}+", path);
    p.write_file(&tmp, content.as_bytes(), mode)?;
    p.os().rename(&tmp, path)
}

fn rewrite_legacy_passwd(p: &mut Proc<'_>, update: &PasswdEntry) -> Result<(), Errno> {
    let text = p.read_to_string("/etc/passwd")?;
    let mut entries = parse_db(&text, PasswdEntry::parse);
    match entries.iter_mut().find(|e| e.name == update.name) {
        Some(e) => *e = update.clone(),
        None => entries.push(update.clone()),
    }
    let content = render_db(&entries, PasswdEntry::render);
    atomic_replace(p, "/etc/passwd", &content, Mode(0o644))
}

fn rewrite_legacy_shadow(p: &mut Proc<'_>, update: &ShadowEntry) -> Result<(), Errno> {
    let text = p.read_to_string("/etc/shadow")?;
    let mut entries = parse_db(&text, ShadowEntry::parse);
    match entries.iter_mut().find(|e| e.name == update.name) {
        Some(e) => *e = update.clone(),
        None => entries.push(update.clone()),
    }
    let content = render_db(&entries, ShadowEntry::render);
    atomic_replace(p, "/etc/shadow", &content, Mode(0o600))
}

/// `passwd [user] <newpassword>` — own password with the old one as
/// authentication; root may set anyone's.
pub fn passwd_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    // Historical exploit site (CVE-2006-3378 class).
    p.vuln("parse_args");
    let args = p.args.clone();
    let (target_name, newpw) = match args.len() {
        1 => (None, args[0].clone()),
        2 => (Some(args[0].clone()), args[1].clone()),
        _ => {
            p.println("usage: passwd [user] <newpassword>");
            return 2;
        }
    };

    // Root administering another account: same path on both systems (the
    // administrator is trusted).
    if let Some(name) = &target_name {
        if !p.ruid().is_root() {
            p.cov("deny_other");
            return fail(
                p,
                "passwd",
                "You may not change this password",
                Errno::EPERM,
            );
        }
        p.cov("root_sets_other");
        let entry = ShadowEntry::with_password(name, &newpw);
        let r = if p.sys.mode == SystemMode::Protego {
            let frag = format!("/etc/shadows/{}", name);
            p.write_file(
                &frag,
                format!("{}\n", entry.render()).as_bytes(),
                Mode(0o600),
            )
        } else {
            rewrite_legacy_shadow(p, &entry)
        };
        return match r {
            Ok(()) => {
                p.println(&format!("passwd: password updated for {}", name));
                0
            }
            Err(e) => {
                p.cov("write_fail");
                fail(p, "passwd", name, e)
            }
        };
    }

    let me = match my_entry(p) {
        Some(e) => e,
        None => return fail(p, "passwd", "who are you?", Errno::ENOENT),
    };

    if p.sys.mode == SystemMode::Legacy {
        if !p.euid().is_root() {
            return fail(p, "passwd", "must be setuid root", Errno::EPERM);
        }
        // The setuid binary prompts for and checks the old password
        // itself against the whole shadow file it can read as root.
        p.cov("legacy_prompt");
        let old_ok = {
            let attempt = p.read_tty();
            let shadow = p.read_to_string("/etc/shadow").unwrap_or_default();
            parse_db(&shadow, ShadowEntry::parse)
                .iter()
                .find(|e| e.name == me.name)
                .zip(attempt)
                .map(|(e, a)| e.verify(&a))
                .unwrap_or(false)
        };
        if !old_ok {
            p.cov("legacy_auth_fail");
            p.println("passwd: Authentication token manipulation error");
            return 1;
        }
        p.cov("legacy_rewrite");
        let entry = ShadowEntry::with_password(&me.name, &newpw);
        if let Err(e) = rewrite_legacy_shadow(p, &entry) {
            p.cov("write_fail");
            return fail(p, "passwd", "/etc/shadow", e);
        }
    } else {
        // Protego: reading your own shadow fragment triggers the kernel's
        // reauthentication (the old-password prompt, §4.4); the write is
        // then plain owner DAC.
        let frag = format!("/etc/shadows/{}", me.name);
        match p.read_to_string(&frag) {
            Ok(_) => p.cov("protego_reauth_read"),
            Err(e) => return fail(p, "passwd", "authentication failure", e),
        }
        p.cov("protego_fragment_write");
        let entry = ShadowEntry::with_password(&me.name, &newpw);
        if let Err(e) = p.write_file(
            &frag,
            format!("{}\n", entry.render()).as_bytes(),
            Mode(0o600),
        ) {
            p.cov("write_fail");
            return fail(p, "passwd", &frag, e);
        }
    }
    p.println("passwd: password updated successfully");
    0
}

fn change_passwd_field(p: &mut Proc<'_>, prog: &str, apply: impl Fn(&mut PasswdEntry)) -> i32 {
    let me = match my_entry(p) {
        Some(e) => e,
        None => return fail(p, prog, "who are you?", Errno::ENOENT),
    };
    let mut updated = me.clone();
    apply(&mut updated);

    if p.sys.mode == SystemMode::Legacy {
        if !p.euid().is_root() {
            return fail(p, prog, "must be setuid root", Errno::EPERM);
        }
        p.cov("legacy_rewrite");
        if let Err(e) = rewrite_legacy_passwd(p, &updated) {
            p.cov("write_fail");
            return fail(p, prog, "/etc/passwd", e);
        }
    } else {
        p.cov("protego_fragment_write");
        let frag = format!("/etc/passwds/{}", me.name);
        if let Err(e) = p.write_file(
            &frag,
            format!("{}\n", updated.render()).as_bytes(),
            Mode(0o600),
        ) {
            p.cov("write_fail");
            return fail(p, prog, &frag, e);
        }
    }
    p.println(&format!("{}: information changed", prog));
    0
}

/// `chsh <shell>` — change own login shell, validated against
/// `/etc/shells`.
pub fn chsh_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    // Historical exploit site (CVE-2005-1335, CVE-2011-0721 class).
    p.vuln("parse_args");
    let shell = match p.args.first() {
        Some(s) => s.clone(),
        None => {
            p.println("usage: chsh <shell>");
            return 2;
        }
    };
    let shells = p.read_to_string("/etc/shells").unwrap_or_default();
    if !shells.lines().any(|l| l.trim() == shell) {
        p.cov("invalid_shell");
        return fail(
            p,
            "chsh",
            &format!("{}: invalid shell", shell),
            Errno::EINVAL,
        );
    }
    change_passwd_field(p, "chsh", move |e| e.shell = shell.clone())
}

/// `chfn <gecos>` — change own GECOS field.
pub fn chfn_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    // Historical exploit site (CVE-2002-1616 class).
    p.vuln("parse_args");
    let gecos = p.args.join(" ");
    change_passwd_field(p, "chfn", move |e| e.gecos = gecos.clone())
}

/// `vipw <user> <shell>` — administrator edit of the account database.
/// Legacy edits the shared `/etc/passwd`; Protego edits the per-user file
/// (the paper's `+40` lines).
pub fn vipw_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    if !p.euid().is_root() {
        p.cov("not_root");
        return fail(p, "vipw", "permission denied", Errno::EPERM);
    }
    let (user, shell) = match (p.args.first(), p.args.get(1)) {
        (Some(u), Some(s)) => (u.clone(), s.clone()),
        _ => {
            p.println("usage: vipw <user> <shell>");
            return 2;
        }
    };
    let text = p.read_to_string("/etc/passwd").unwrap_or_default();
    let mut entry = match parse_db(&text, PasswdEntry::parse)
        .into_iter()
        .find(|e| e.name == user)
    {
        Some(e) => e,
        None => {
            p.cov("no_user");
            return fail(p, "vipw", &user, Errno::ENOENT);
        }
    };
    entry.shell = shell;
    if p.sys.mode == SystemMode::Protego {
        p.cov("protego_edit");
        let frag = format!("/etc/passwds/{}", user);
        if let Err(e) = p.write_file(
            &frag,
            format!("{}\n", entry.render()).as_bytes(),
            Mode(0o600),
        ) {
            return fail(p, "vipw", &frag, e);
        }
        // Restore fragment ownership to the account it describes.
        let _ = p.os().chown(
            &frag,
            Some(Uid(entry.uid)),
            Some(sim_kernel::cred::Gid(entry.gid)),
        );
    } else {
        p.cov("legacy_edit");
        if let Err(e) = rewrite_legacy_passwd(p, &entry) {
            return fail(p, "vipw", "/etc/passwd", e);
        }
    }
    p.println(&format!("vipw: updated {}", user));
    0
}

/// `login <user>` — verifies the password from the terminal and becomes
/// the user (the getty path; runs as root on both systems).
pub fn login_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    let user = match p.args.first() {
        Some(u) => u.clone(),
        None => {
            p.println("usage: login <user>");
            return 2;
        }
    };
    let text = p.read_to_string("/etc/passwd").unwrap_or_default();
    let entry = match parse_db(&text, PasswdEntry::parse)
        .into_iter()
        .find(|e| e.name == user)
    {
        Some(e) => e,
        None => {
            p.cov("no_user");
            return fail(p, "login", &user, Errno::ENOENT);
        }
    };
    let ok = {
        let attempt = p.read_tty();
        let shadow = p.read_to_string("/etc/shadow").unwrap_or_default();
        parse_db(&shadow, ShadowEntry::parse)
            .iter()
            .find(|e| e.name == user)
            .zip(attempt)
            .map(|(e, a)| e.verify(&a))
            .unwrap_or(false)
    };
    if !ok {
        p.cov("auth_fail");
        p.println("Login incorrect");
        return 1;
    }
    p.cov("auth_ok");
    let _ = p.sys.kernel.mark_authenticated(p.pid);
    if let Err(e) = p.os().setuid(Uid(entry.uid)) {
        return fail(p, "login", "setuid", e);
    }
    p.println(&format!("login: welcome {}", user));
    p.exec(&entry.shell, &[])
}

/// `/bin/sh` — a stub shell (prints its identity and exits).
pub fn sh_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    let (r, e) = (p.ruid().0, p.euid().0);
    p.println(&format!("sh: uid={} euid={}", r, e));
    0
}
