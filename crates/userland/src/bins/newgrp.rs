//! Group utilities: `newgrp` and `gpasswd` (§4.3).
//!
//! `newgrp` exports password-protected groups: a member may switch freely;
//! a non-member may join by proving the group password. Legacy `newgrp`
//! is setuid-root and does the checking itself; under Protego the `setgid`
//! hook enforces the same policy with kernel-launched authentication.

use super::{fail, CatalogItem};
use crate::db::{parse_db, GroupEntry, GshadowEntry};
use crate::system::{BinEntry, Proc, SystemMode};
use sim_kernel::cred::Gid;
use sim_kernel::error::Errno;
use sim_kernel::lsm::sim_crypt;
use sim_kernel::vfs::Mode;

/// Catalog entries for this module.
pub fn catalog() -> Vec<CatalogItem> {
    vec![
        CatalogItem {
            path: "/usr/bin/newgrp",
            entry: BinEntry {
                func: newgrp_main,
                points: &[
                    "start",
                    "parse_args",
                    "legacy_member",
                    "legacy_prompt",
                    "legacy_auth_fail",
                    "setgid_ok",
                    "setgid_fail",
                ],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/usr/bin/gpasswd",
            entry: BinEntry {
                func: gpasswd_main,
                points: &["start", "set_ok", "remove_ok", "write_fail", "not_admin"],
            },
            setuid: true,
        },
    ]
}

/// Looks up a group by name.
pub fn lookup_group(p: &mut Proc<'_>, name: &str) -> Option<GroupEntry> {
    let text = p.read_to_string("/etc/group").ok()?;
    parse_db(&text, GroupEntry::parse)
        .into_iter()
        .find(|g| g.name == name)
}

fn my_name(p: &mut Proc<'_>) -> Option<String> {
    let uid = p.ruid();
    let text = p.read_to_string("/etc/passwd").ok()?;
    parse_db(&text, crate::db::PasswdEntry::parse)
        .into_iter()
        .find(|e| e.uid == uid.0)
        .map(|e| e.name)
}

/// `newgrp <group>`.
pub fn newgrp_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    // Historical exploit site: newgrp has six privilege-escalation CVEs
    // (CVE-1999-0050 through CVE-2005-0816).
    p.vuln("parse_args");
    let gname = match p.args.first() {
        Some(g) => g.clone(),
        None => {
            p.println("usage: newgrp <group>");
            return 2;
        }
    };
    let group = match lookup_group(p, &gname) {
        Some(g) => g,
        None => return fail(p, "newgrp", &format!("group {}", gname), Errno::ENOENT),
    };

    if p.sys.mode == SystemMode::Legacy {
        if !p.euid().is_root() {
            return fail(p, "newgrp", "must be setuid root", Errno::EPERM);
        }
        let me = my_name(p).unwrap_or_default();
        let is_member = group.members.iter().any(|m| m == &me);
        if is_member {
            p.cov("legacy_member");
        } else {
            // Non-member: the setuid binary prompts for the group
            // password from /etc/gshadow.
            p.cov("legacy_prompt");
            let gshadow = p.read_to_string("/etc/gshadow").unwrap_or_default();
            let entry = parse_db(&gshadow, GshadowEntry::parse)
                .into_iter()
                .find(|e| e.name == gname);
            let ok = match (entry, p.read_tty()) {
                (Some(e), Some(attempt)) if e.password_protected() => e.verify(&attempt),
                _ => false,
            };
            if !ok {
                p.cov("legacy_auth_fail");
                p.println("newgrp: Invalid password");
                return 1;
            }
        }
        // Drop root before announcing the new group.
        let ruid = p.ruid();
        let gid = Gid(group.gid);
        if let Err(e) = p.os().setgid(gid) {
            p.cov("setgid_fail");
            return fail(p, "newgrp", "setgid", e);
        }
        let _ = p.os().setuid(ruid);
    } else {
        match p.os().setgid(Gid(group.gid)) {
            Ok(()) => {}
            Err(e) => {
                p.cov("setgid_fail");
                p.println(&format!("newgrp: Invalid password ({})", e));
                return 1;
            }
        }
    }
    p.cov("setgid_ok");
    let egid = p.sys.kernel.task(p.pid).map(|t| t.cred.egid.0).unwrap_or(0);
    p.println(&format!("newgrp: now gid={}", egid));
    0
}

/// `gpasswd <group> <newpassword>` sets, `gpasswd -r <group>` removes the
/// group password. Legacy: root rewrites `/etc/gshadow`. Protego: the
/// group's *administrator* edits the per-group fragment
/// `/etc/gshadows/<group>`, which she owns.
pub fn gpasswd_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    let (remove, gname, newpw) = match p.args.first().map(String::as_str) {
        Some("-r") => match p.args.get(1) {
            Some(g) => (true, g.clone(), String::new()),
            None => {
                p.println("usage: gpasswd -r <group>");
                return 2;
            }
        },
        Some(g) => match p.args.get(1) {
            Some(pw) => (false, g.to_string(), pw.clone()),
            None => {
                p.println("usage: gpasswd <group> <newpassword>");
                return 2;
            }
        },
        None => {
            p.println("usage: gpasswd [-r] <group> [newpassword]");
            return 2;
        }
    };
    if lookup_group(p, &gname).is_none() {
        return fail(p, "gpasswd", &format!("group {}", gname), Errno::ENOENT);
    }
    let salt: String = gname.chars().take(2).collect();
    let hash = if remove {
        "!".to_string()
    } else {
        sim_crypt(&salt, &newpw)
    };
    let line = format!("{}:{}::\n", gname, hash);

    if p.sys.mode == SystemMode::Legacy {
        if !p.euid().is_root() {
            return fail(p, "gpasswd", "must be setuid root", Errno::EPERM);
        }
        // The setuid binary's own authorization: only root or a group
        // member (standing in for gshadow's administrator list) may
        // change the group password.
        if !p.ruid().is_root() {
            let me = my_name(p).unwrap_or_default();
            let is_member = lookup_group(p, &gname)
                .map(|g| g.members.iter().any(|m| m == &me))
                .unwrap_or(false);
            if !is_member {
                p.cov("not_admin");
                return fail(p, "gpasswd", "not a group administrator", Errno::EPERM);
            }
        }
        // Rewrite the shared file, replacing this group's record.
        let old = p.read_to_string("/etc/gshadow").unwrap_or_default();
        let mut entries: Vec<GshadowEntry> = parse_db(&old, GshadowEntry::parse);
        match entries.iter_mut().find(|e| e.name == gname) {
            Some(e) => e.hash = hash,
            None => entries.push(GshadowEntry {
                name: gname.clone(),
                hash,
            }),
        }
        let content: String = entries
            .iter()
            .map(|e| format!("{}\n", e.render()))
            .collect();
        if let Err(e) = p.write_file("/etc/gshadow", content.as_bytes(), Mode(0o600)) {
            p.cov("write_fail");
            return fail(p, "gpasswd", "/etc/gshadow", e);
        }
    } else {
        // Protego: write the fragment; DAC decides whether this user is
        // the group administrator (file owner).
        let frag = format!("/etc/gshadows/{}", gname);
        if let Err(e) = p.write_file(&frag, line.as_bytes(), Mode(0o600)) {
            p.cov(if e == Errno::EACCES {
                "not_admin"
            } else {
                "write_fail"
            });
            return fail(p, "gpasswd", &frag, e);
        }
    }
    if remove {
        p.cov("remove_ok");
        p.println(&format!("gpasswd: password removed for {}", gname));
    } else {
        p.cov("set_ok");
        p.println(&format!("gpasswd: password set for {}", gname));
    }
    0
}
