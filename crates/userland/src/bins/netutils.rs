//! Network diagnostics: `ping`, `ping6`, `arping`, `traceroute`,
//! `tracepath`, `mtr`, `fping`, plus the user-written `myping` that only
//! Protego can support (§4.1.1).
//!
//! The legacy variants are setuid-to-root solely to create a raw or
//! packet socket, and follow best practice by dropping privilege
//! immediately afterwards. Under Protego the same code runs with no
//! privilege at all; outgoing packets are policed by netfilter.

use super::{fail, CatalogItem};
use crate::system::{BinEntry, Proc, SystemMode};
use sim_kernel::error::Errno;
use sim_kernel::net::{Domain, IcmpKind, Ipv4, Packet, SockType, L4};

/// Catalog entries for this module.
pub fn catalog() -> Vec<CatalogItem> {
    vec![
        CatalogItem {
            path: "/bin/ping",
            entry: BinEntry {
                func: ping_main,
                points: &[
                    "start",
                    "parse_args",
                    "socket_ok",
                    "socket_fail",
                    "drop_priv",
                    "reply",
                    "timeout",
                    "send_fail",
                    "parse_reply",
                ],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/bin/ping6",
            entry: BinEntry {
                func: ping_main,
                points: &[
                    "start",
                    "socket_ok",
                    "socket_fail",
                    "drop_priv",
                    "reply",
                    "timeout",
                    "send_fail",
                    "parse_reply",
                ],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/usr/bin/arping",
            entry: BinEntry {
                func: arping_main,
                points: &["start", "socket_fail", "reply", "timeout"],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/usr/bin/traceroute",
            entry: BinEntry {
                func: traceroute_main,
                points: &[
                    "start",
                    "parse_args",
                    "socket_fail",
                    "hop",
                    "reached",
                    "unreachable",
                ],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/usr/bin/tracepath",
            entry: BinEntry {
                func: traceroute_main,
                points: &[
                    "start",
                    "parse_args",
                    "socket_fail",
                    "hop",
                    "reached",
                    "unreachable",
                ],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/usr/bin/mtr",
            entry: BinEntry {
                func: mtr_main,
                points: &["start", "parse_args", "socket_fail", "hop", "probe_loss"],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/usr/bin/fping",
            entry: BinEntry {
                func: fping_main,
                points: &["start", "alive", "dead", "socket_fail"],
            },
            setuid: true,
        },
        // Alice's own, never-privileged ping — the Protego capability the
        // paper highlights: any user may build network tools, as long as
        // their packets conform to system policy.
        CatalogItem {
            path: "/home/alice/bin/myping",
            entry: BinEntry {
                func: myping_main,
                points: &["start", "reply", "denied"],
            },
            setuid: false,
        },
    ]
}

fn local_ip(p: &Proc<'_>) -> Ipv4 {
    p.sys
        .kernel
        .simnet
        .local_ips
        .last()
        .copied()
        .unwrap_or(Ipv4::LOOPBACK)
}

fn parse_target(p: &mut Proc<'_>, prog: &str) -> Result<Ipv4, i32> {
    match p.args.first().and_then(|a| Ipv4::parse(a)) {
        Some(ip) => Ok(ip),
        None => {
            p.println(&format!("usage: {} <ipv4-address>", prog));
            Err(2)
        }
    }
}

/// Opens a raw ICMP socket with legacy privilege etiquette: the setuid
/// variant drops privilege right after socket creation.
fn raw_socket(p: &mut Proc<'_>, prog: &str) -> Result<i32, i32> {
    match p.os().socket(Domain::Inet, SockType::Raw, 1) {
        Ok(fd) => {
            p.cov("socket_ok");
            if p.sys.mode == SystemMode::Legacy && p.euid().is_root() && !p.ruid().is_root() {
                p.cov("drop_priv");
                let ruid = p.ruid();
                let _ = p.os().setuid(ruid);
            }
            Ok(fd)
        }
        Err(e) => {
            p.cov("socket_fail");
            Err(fail(p, prog, "icmp open socket", e))
        }
    }
}

/// `ping <ip>` — one echo round-trip.
pub fn ping_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    // Historical exploit site: option/argument parsing while still
    // holding root (CVE-1999-1208, CVE-2001-0499 class).
    p.vuln("parse_args");
    let dst = match parse_target(p, "ping") {
        Ok(ip) => ip,
        Err(c) => return c,
    };
    let fd = match raw_socket(p, "ping") {
        Ok(fd) => fd,
        Err(c) => return c,
    };
    let id = p.pid.0 as u16;
    let pkt = Packet::echo_request(local_ip(p), dst, id, 1, p.euid());
    if let Err(e) = p.os().send_packet(fd, pkt) {
        p.cov("send_fail");
        return fail(p, "ping", "sendmsg", e);
    }
    match p.os().recv_packet(fd) {
        Ok(reply) => {
            // Historical exploit site: reply parsing (CVE-2000-1213
            // class — ping's reply handling overflows).
            p.vuln("parse_reply");
            match reply.l4 {
                L4::Icmp(IcmpKind::EchoReply { id: rid, seq }) if rid == id => {
                    p.cov("reply");
                    p.println(&format!(
                        "64 bytes from {}: icmp_seq={} ttl={}",
                        reply.src, seq, reply.ttl
                    ));
                    0
                }
                _ => {
                    p.cov("timeout");
                    p.println("ping: unexpected reply");
                    1
                }
            }
        }
        Err(_) => {
            p.cov("timeout");
            p.println(&format!(
                "--- {} ping statistics: 1 packets transmitted, 0 received ---",
                dst
            ));
            1
        }
    }
}

/// `arping <ip>` — one ARP who-has round-trip over a packet socket.
pub fn arping_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    let dst = match parse_target(p, "arping") {
        Ok(ip) => ip,
        Err(c) => return c,
    };
    let fd = match p.os().socket(Domain::Packet, SockType::Raw, 0) {
        Ok(fd) => fd,
        Err(e) => {
            p.cov("socket_fail");
            return fail(p, "arping", "packet socket", e);
        }
    };
    if p.sys.mode == SystemMode::Legacy && p.euid().is_root() && !p.ruid().is_root() {
        let ruid = p.ruid();
        let _ = p.os().setuid(ruid);
    }
    let pkt = Packet {
        src: local_ip(p),
        dst,
        ttl: 1,
        l4: L4::Arp { op: 1, target: dst },
        payload: Vec::new(),
        from_raw_socket: true,
        sender_uid: p.euid(),
    };
    if let Err(e) = p.os().send_packet(fd, pkt) {
        return fail(p, "arping", "send", e);
    }
    match p.os().recv_packet(fd) {
        Ok(reply) if matches!(reply.l4, L4::Arp { op: 2, .. }) => {
            p.cov("reply");
            p.println(&format!("Unicast reply from {}", reply.src));
            0
        }
        _ => {
            p.cov("timeout");
            p.println("arping: no reply");
            1
        }
    }
}

/// `traceroute <ip>` — UDP probes with growing TTL.
pub fn traceroute_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    // Historical exploit site (CVE-2005-2071 class).
    p.vuln("parse_args");
    let dst = match parse_target(p, "traceroute") {
        Ok(ip) => ip,
        Err(c) => return c,
    };
    let fd = match raw_socket(p, "traceroute") {
        Ok(fd) => fd,
        Err(c) => return c,
    };
    let src = local_ip(p);
    for ttl in 1..=16u8 {
        let probe = Packet::udp_probe(src, dst, ttl, 33434 + ttl as u16, p.euid());
        if let Err(e) = p.os().send_packet(fd, probe) {
            return fail(p, "traceroute", "send", e);
        }
        match p.os().recv_packet(fd) {
            Ok(reply) => match reply.l4 {
                L4::Icmp(IcmpKind::TimeExceeded) => {
                    p.cov("hop");
                    p.println(&format!("{:2}  {}", ttl, reply.src));
                }
                L4::Icmp(IcmpKind::DestUnreachable) => {
                    p.cov("reached");
                    p.println(&format!("{:2}  {}  (reached)", ttl, reply.src));
                    return 0;
                }
                _ => {}
            },
            Err(_) => {
                p.cov("unreachable");
                p.println(&format!("{:2}  *", ttl));
                return 1;
            }
        }
    }
    1
}

/// `mtr <ip>` — per-hop discovery plus an echo probe to the target.
pub fn mtr_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    // Historical exploit site (CVE-2002-0497 class).
    p.vuln("parse_args");
    let dst = match parse_target(p, "mtr") {
        Ok(ip) => ip,
        Err(c) => return c,
    };
    let fd = match raw_socket(p, "mtr") {
        Ok(fd) => fd,
        Err(c) => return c,
    };
    let src = local_ip(p);
    let mut hops = 0;
    for ttl in 1..=16u8 {
        let probe = Packet::udp_probe(src, dst, ttl, 33434, p.euid());
        if p.os().send_packet(fd, probe).is_err() {
            break;
        }
        match p.os().recv_packet(fd) {
            Ok(reply) => match reply.l4 {
                L4::Icmp(IcmpKind::TimeExceeded) => {
                    hops += 1;
                    p.cov("hop");
                    p.println(&format!("{}. {}", ttl, reply.src));
                }
                L4::Icmp(IcmpKind::DestUnreachable) => {
                    hops += 1;
                    p.println(&format!("{}. {} (target)", ttl, reply.src));
                    break;
                }
                _ => {}
            },
            Err(_) => {
                p.cov("probe_loss");
                break;
            }
        }
    }
    // One final latency probe to the destination itself.
    let echo = Packet::echo_request(src, dst, p.pid.0 as u16, 99, p.euid());
    if p.os().send_packet(fd, echo).is_ok() {
        if let Ok(reply) = p.os().recv_packet(fd) {
            if matches!(reply.l4, L4::Icmp(IcmpKind::EchoReply { .. })) {
                p.println(&format!("{}: echo ok", dst));
            }
        }
    }
    if hops > 0 {
        0
    } else {
        1
    }
}

/// `fping <ip> [ip...]` — liveness sweep.
pub fn fping_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    if p.args.is_empty() {
        p.println("usage: fping <ip> [ip...]");
        return 2;
    }
    let fd = match raw_socket(p, "fping") {
        Ok(fd) => fd,
        Err(c) => return c,
    };
    let src = local_ip(p);
    let mut any_dead = false;
    let targets: Vec<Option<Ipv4>> = p.args.iter().map(|a| Ipv4::parse(a)).collect();
    for (i, t) in targets.iter().enumerate() {
        let Some(ip) = t else {
            any_dead = true;
            continue;
        };
        let pkt = Packet::echo_request(src, *ip, p.pid.0 as u16, i as u16, p.euid());
        let alive = p.os().send_packet(fd, pkt).is_ok() && p.os().recv_packet(fd).is_ok();
        if alive {
            p.cov("alive");
            p.println(&format!("{} is alive", ip));
        } else {
            p.cov("dead");
            any_dead = true;
            p.println(&format!("{} is unreachable", ip));
        }
    }
    if any_dead {
        1
    } else {
        0
    }
}

/// Alice's hand-rolled ping: identical logic, zero privilege anywhere. On
/// stock Linux the socket call fails with EPERM; on Protego it works, and
/// a spoofing variant would be stopped by netfilter instead.
pub fn myping_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    let dst = match parse_target(p, "myping") {
        Ok(ip) => ip,
        Err(c) => return c,
    };
    let fd = match p.os().socket(Domain::Inet, SockType::Raw, 1) {
        Ok(fd) => fd,
        Err(e) => {
            p.cov("denied");
            return fail(p, "myping", "socket", e);
        }
    };
    let pkt = Packet::echo_request(local_ip(p), dst, 777, 1, p.euid());
    if let Err(e) = p.os().send_packet(fd, pkt) {
        p.cov("denied");
        return fail(p, "myping", "send", e);
    }
    match p.os().recv_packet(fd) {
        Ok(reply) => {
            p.cov("reply");
            p.println(&format!("myping: reply from {}", reply.src));
            0
        }
        Err(e) => {
            p.println(&format!("myping: no reply ({})", e));
            1
        }
    }
}

/// A spoofing attempt: claims a TCP source port owned by another user.
/// Not installed as a binary; used directly by tests and examples to show
/// the netfilter rule stopping it (Table 4's raw-socket security concern).
pub fn send_spoofed_tcp(p: &mut Proc<'_>, victim_port: u16, dst: Ipv4) -> Result<(), Errno> {
    let fd = p.os().socket(Domain::Inet, SockType::Raw, 6)?;
    let pkt = Packet {
        src: local_ip(p),
        dst,
        ttl: 64,
        l4: L4::Tcp {
            src_port: victim_port,
            dst_port: 80,
            syn: false,
        },
        payload: b"RST".to_vec(),
        from_raw_socket: true,
        sender_uid: p.euid(),
    };
    p.os().send_packet(fd, pkt)
}
