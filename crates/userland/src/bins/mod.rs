//! The command-line binaries of the simulated distribution.
//!
//! Each studied setuid-to-root utility is implemented once, with the
//! legacy (setuid, self-enforcing) and Protego (unprivileged,
//! kernel-enforced) variants sharing the code and branching where the
//! paper's prototype changed the source — e.g. the removed "must be root"
//! checks (Table 2's `-25` lines for mount/umount/sudo/pppd).

pub mod longtail;
pub mod mail;
pub mod misc;
pub mod mount;
pub mod netutils;
pub mod newgrp;
pub mod passwd;
pub mod polkit;
pub mod pppd;
pub mod sudo;

use crate::system::{BinEntry, Proc, System};
use sim_kernel::error::Errno;

/// A cataloged program: path, entry, and whether the legacy image marks
/// it setuid-root.
pub struct CatalogItem {
    /// Absolute install path.
    pub path: &'static str,
    /// Program body and coverage points.
    pub entry: BinEntry,
    /// Setuid-to-root in the legacy image.
    pub setuid: bool,
}

/// Prints an errno-style failure and returns its exit code.
pub(crate) fn fail(p: &mut Proc<'_>, prog: &str, msg: &str, e: Errno) -> i32 {
    p.println(&format!("{}: {}: {}", prog, msg, e));
    e.as_errno_i32()
}

/// The full program catalog. The image builder installs each item and the
/// registry maps its path to its body.
pub fn catalog() -> Vec<CatalogItem> {
    let mut v = Vec::new();
    v.extend(mount::catalog());
    v.extend(netutils::catalog());
    v.extend(sudo::catalog());
    v.extend(newgrp::catalog());
    v.extend(passwd::catalog());
    v.extend(polkit::catalog());
    v.extend(pppd::catalog());
    v.extend(misc::catalog());
    v.extend(longtail::catalog());
    v.extend(mail::catalog());
    v
}

/// Registers every cataloged program on a system (files must already be
/// installed by the image builder).
pub fn register_all(sys: &mut System) {
    for item in catalog() {
        sys.register(item.path, item.entry);
    }
}

/// The number of setuid-to-root binaries in the legacy image — the attack
/// surface Protego removes.
pub fn setuid_binary_count() -> usize {
    catalog().iter().filter(|c| c.setuid).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_paths_are_unique_and_absolute() {
        let items = catalog();
        let mut paths: Vec<_> = items.iter().map(|i| i.path).collect();
        assert!(paths.iter().all(|p| p.starts_with('/')));
        paths.sort();
        paths.dedup();
        assert_eq!(paths.len(), items.len(), "duplicate catalog path");
    }

    #[test]
    fn catalog_has_the_studied_binaries() {
        let items = catalog();
        let has = |p: &str| items.iter().any(|i| i.path == p);
        for p in [
            "/bin/mount",
            "/bin/umount",
            "/bin/ping",
            "/usr/bin/sudo",
            "/bin/su",
            "/usr/bin/passwd",
            "/usr/bin/chsh",
            "/usr/bin/newgrp",
            "/usr/sbin/pppd",
            "/usr/bin/dmcrypt-get-device",
            "/usr/lib/ssh-keysign",
            "/usr/bin/Xorg",
            "/usr/sbin/exim4",
        ] {
            assert!(has(p), "missing {}", p);
        }
    }

    #[test]
    fn setuid_surface_is_substantial() {
        // The legacy image ships a realistic setuid complement.
        assert!(setuid_binary_count() >= 20);
    }
}
