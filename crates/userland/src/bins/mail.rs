//! Network services: the `exim4` mail server and an `httpd` web server
//! (§4.1.3 and the ApacheBench/Postal workloads of Table 5).
//!
//! Both need a port below 1024. On stock Linux they start as root (or
//! setuid) to bind and then drop privilege; under Protego they start as
//! their service users and `/etc/bind` allocates the port to the
//! (binary, uid) application instance.

use super::{fail, CatalogItem};
use crate::system::{BinEntry, Proc, RunResult, System, SystemMode};
use sim_kernel::cred::Uid;
use sim_kernel::error::{Errno, KResult};
use sim_kernel::net::{Domain, Ipv4, SockType};
use sim_kernel::task::Pid;

/// The uid the mail service runs under (`mail`).
pub const MAIL_UID: u32 = 8;
/// The uid the web service runs under (`www-data`).
pub const WWW_UID: u32 = 33;

/// Catalog entries for this module.
pub fn catalog() -> Vec<CatalogItem> {
    vec![
        CatalogItem {
            path: "/usr/sbin/exim4",
            entry: BinEntry {
                func: exim_main,
                points: &[
                    "start",
                    "parse_args",
                    "bind_ok",
                    "bind_fail",
                    "drop_priv",
                    "deliver",
                    "forward_used",
                    "forward_unreadable",
                    "deliver_fail",
                ],
            },
            // Historically exim/sendmail ship setuid root.
            setuid: true,
        },
        CatalogItem {
            path: "/usr/sbin/httpd",
            entry: BinEntry {
                func: httpd_main,
                points: &["start", "bind_ok", "bind_fail", "drop_priv"],
            },
            setuid: false,
        },
        // A compromised/rogue service used to demonstrate port
        // exclusivity: it tries to take port 25 while being the web
        // server binary.
        CatalogItem {
            path: "/usr/sbin/rogue-mta",
            entry: BinEntry {
                func: rogue_main,
                points: &["start", "bind_ok", "bind_fail"],
            },
            setuid: false,
        },
    ]
}

fn bind_service(p: &mut Proc<'_>, prog: &str, port: u16, drop_to: u32) -> Result<i32, i32> {
    let fd = match p.os().socket(Domain::Inet, SockType::Stream, 0) {
        Ok(fd) => fd,
        Err(e) => return Err(fail(p, prog, "socket", e)),
    };
    match p.os().bind(fd, Ipv4::ANY, port) {
        Ok(()) => p.cov("bind_ok"),
        Err(e) => {
            p.cov("bind_fail");
            return Err(fail(p, prog, &format!("bind {}", port), e));
        }
    }
    if let Err(e) = p.os().listen(fd) {
        return Err(fail(p, prog, "listen", e));
    }
    // Legacy etiquette: drop the *effective* uid after the privileged
    // bind, keeping the saved uid 0 — classic MTAs regain root per
    // delivery (to read `.forward` across DAC, §4.4). That retained
    // privilege is exactly the risk Protego removes.
    if p.sys.mode == SystemMode::Legacy && p.euid().is_root() {
        p.cov("drop_priv");
        let _ = p.os().seteuid(Uid(drop_to));
    }
    p.println(&format!("{}: listening on port {} (fd {})", prog, port, fd));
    Ok(fd)
}

/// `exim4 --daemon` — binds port 25 and leaves the listening socket open;
/// the event loop is driven by [`exim_serve_one`].
pub fn exim_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    // Historical exploit site: the MTA's setuid entry path
    // (CVE-2010-2023/2024, and sendmail's CVE-1999-0130/0203 class).
    p.vuln("parse_args");
    if p.args.first().map(String::as_str) != Some("--daemon") {
        p.println("usage: exim4 --daemon");
        return 2;
    }
    match bind_service(p, "exim4", 25, MAIL_UID) {
        Ok(_) => 0,
        Err(code) => code,
    }
}

/// `httpd --daemon` — binds port 80.
pub fn httpd_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    if p.args.first().map(String::as_str) != Some("--daemon") {
        p.println("usage: httpd --daemon");
        return 2;
    }
    match bind_service(p, "httpd", 80, WWW_UID) {
        Ok(_) => 0,
        Err(code) => code,
    }
}

/// A malicious service that, having been given port 80's identity, also
/// tries to become the mail server (§4.1.3's threat).
pub fn rogue_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    let fd = match p.os().socket(Domain::Inet, SockType::Stream, 0) {
        Ok(fd) => fd,
        Err(e) => return fail(p, "rogue-mta", "socket", e),
    };
    match p.os().bind(fd, Ipv4::ANY, 25) {
        Ok(()) => {
            p.cov("bind_ok");
            p.println("rogue-mta: captured port 25!");
            0
        }
        Err(e) => {
            p.cov("bind_fail");
            fail(p, "rogue-mta", "bind 25", e)
        }
    }
}

// ---------------------------------------------------------------------
// Service event loops (driven by tests, benches, and examples)
// ---------------------------------------------------------------------

/// Handles one SMTP connection on the exim daemon task: accepts, reads
/// `MAIL TO:<user>\n<body>`, delivers, replies `250 OK`.
pub fn exim_serve_one(sys: &mut System, server: Pid, listen_fd: i32) -> KResult<String> {
    let conn = sys.process(server).accept(listen_fd)?;
    let req = sys.process(server).recv(conn, 65536)?;
    let text = String::from_utf8_lossy(&req).to_string();
    let reply = match deliver(sys, server, &text) {
        Ok(log) => {
            sys.process(server).send(conn, b"250 OK\r\n")?;
            log
        }
        Err(e) => {
            sys.process(server).send(conn, b"451 delivery failed\r\n")?;
            format!("delivery failed: {}", e)
        }
    };
    sys.process(server).close(conn)?;
    Ok(reply)
}

/// Mail delivery (the §4.4 `.forward` case): consult the recipient's
/// `~/.forward` if readable; on Protego the unprivileged MDA may not read
/// it, in which case a diagnostic goes to the log and delivery proceeds
/// to the spool.
fn deliver(sys: &mut System, server: Pid, text: &str) -> KResult<String> {
    let rcpt = text
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("MAIL TO:<"))
        .and_then(|l| l.strip_suffix('>'))
        .ok_or(Errno::EINVAL)?
        .to_string();
    let body: String = text.lines().skip(1).collect::<Vec<_>>().join("\n");
    sys.coverage.hit("/usr/sbin/exim4", "deliver");

    // The legacy MTA regains root for delivery (its saved uid is still
    // 0); the Protego MTA has nothing to regain.
    let legacy_raise = sys.mode == SystemMode::Legacy
        && sys
            .kernel
            .task(server)
            .map(|t| t.cred.suid.is_root() && !t.cred.euid.is_root())
            .unwrap_or(false);
    if legacy_raise {
        sys.process(server).seteuid(Uid::ROOT)?;
    }

    let forward_path = format!("/home/{}/.forward", rcpt);
    let target = match sys.process(server).read_to_string(&forward_path) {
        Ok(fwd) => {
            sys.coverage.hit("/usr/sbin/exim4", "forward_used");
            let t = fwd.trim().to_string();
            if t.is_empty() {
                format!("/var/mail/{}", rcpt)
            } else {
                t
            }
        }
        Err(Errno::EACCES) => {
            // Protego's answer: a clear warning in the log instead of a
            // root-powered DAC bypass (§4.4).
            sys.coverage.hit("/usr/sbin/exim4", "forward_unreadable");
            let warn = format!(
                "warning: cannot read {} (permission denied); delivering to spool\n",
                forward_path
            );
            let _ = sys
                .kernel
                .append_file(server, "/var/log/exim4/mainlog", warn.as_bytes());
            format!("/var/mail/{}", rcpt)
        }
        Err(_) => format!("/var/mail/{}", rcpt),
    };
    let line = format!("From MTA: to {}\n{}\n\n", rcpt, body);
    let result = match sys.process(server).append_file(&target, line.as_bytes()) {
        Ok(()) => Ok(format!("delivered to {}", target)),
        Err(e) => {
            sys.coverage.hit("/usr/sbin/exim4", "deliver_fail");
            Err(e)
        }
    };
    if legacy_raise {
        let _ = sys.process(server).seteuid(Uid(MAIL_UID));
    }
    result
}

/// Sends one message through the local SMTP port from `session`; returns
/// the server's reply line.
pub fn smtp_send(
    sys: &mut System,
    session: Pid,
    server: Pid,
    listen_fd: i32,
    rcpt: &str,
    body: &str,
) -> KResult<String> {
    let cli = sys
        .process(session)
        .socket(Domain::Inet, SockType::Stream, 0)?;
    sys.process(session).connect(cli, Ipv4::LOOPBACK, 25)?;
    let msg = format!("MAIL TO:<{}>\n{}", rcpt, body);
    sys.process(session).send(cli, msg.as_bytes())?;
    exim_serve_one(sys, server, listen_fd)?;
    let reply = sys.process(session).recv(cli, 1024)?;
    sys.process(session).close(cli)?;
    Ok(String::from_utf8_lossy(&reply).to_string())
}

/// The page served when the docroot is missing or unreadable.
pub const HTTPD_FALLBACK_PAGE: &str = "<html><body>It works!</body></html>";

/// The docroot file `httpd` serves.
pub const HTTPD_DOCROOT_INDEX: &str = "/var/www/index.html";

/// Handles one HTTP connection on the httpd task: accepts, reads the
/// request, and serves the docroot index — a stat + open + read + close
/// per request, the per-request syscall mix ApacheBench measures —
/// falling back to a fixed page if the docroot is absent.
pub fn httpd_serve_one(sys: &mut System, server: Pid, listen_fd: i32) -> KResult<()> {
    let conn = sys.process(server).accept(listen_fd)?;
    let _req = sys.process(server).recv(conn, 65536)?;
    let mut p = sys.process(server);
    let body = match p.stat(HTTPD_DOCROOT_INDEX) {
        Ok(_) => p
            .read_to_string(HTTPD_DOCROOT_INDEX)
            .unwrap_or_else(|_| HTTPD_FALLBACK_PAGE.to_string()),
        Err(_) => HTTPD_FALLBACK_PAGE.to_string(),
    };
    let resp = format!(
        "HTTP/1.0 200 OK\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    sys.process(server).send(conn, resp.as_bytes())?;
    sys.process(server).close(conn)
}

/// One client HTTP request against the local httpd; returns the response.
pub fn http_get(sys: &mut System, session: Pid, server: Pid, listen_fd: i32) -> KResult<String> {
    let cli = sys
        .process(session)
        .socket(Domain::Inet, SockType::Stream, 0)?;
    sys.process(session).connect(cli, Ipv4::LOOPBACK, 80)?;
    sys.process(session).send(cli, b"GET / HTTP/1.0\r\n\r\n")?;
    httpd_serve_one(sys, server, listen_fd)?;
    let resp = sys.process(session).recv(cli, 65536)?;
    sys.process(session).close(cli)?;
    Ok(String::from_utf8_lossy(&resp).to_string())
}

/// Extracts the listening fd a daemon announced in its startup output.
pub fn parse_listen_fd(startup: &RunResult) -> Option<i32> {
    startup
        .stdout
        .split("(fd ")
        .nth(1)?
        .split(')')
        .next()?
        .parse()
        .ok()
}
