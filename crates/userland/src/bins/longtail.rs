//! Long-tail setuid binaries (§5.4 / Table 8): utilities outside the
//! 28-binary study that Protego's existing abstractions cover, sometimes
//! after a policy refinement.
//!
//! * `tcptraceroute` — raw TCP SYN probes. The default Protego raw-socket
//!   whitelist (mined from the *studied* binaries) does not admit raw
//!   TCP, so on a stock Protego image the tool fails until the
//!   administrator refines the netfilter policy with one iptables rule —
//!   exactly the "may require refinement to the policies currently
//!   enforced" caveat of §5.4.
//! * `lppasswd` — the CUPS print password (Table 4's credential-database
//!   row). Legacy: setuid root rewriting the shared digest file;
//!   Protego: a per-user fragment under `/etc/cups/passwds/`.
//! * `mount.ecryptfs_private` — mounts the user's encrypted Private
//!   directory; a mount-family helper whose whitelist entry is
//!   per-user.

use super::{fail, CatalogItem};
use crate::system::{BinEntry, Proc, SystemMode};
use sim_kernel::error::Errno;
use sim_kernel::lsm::sim_crypt;
use sim_kernel::net::{IcmpKind, Ipv4, Packet, L4};
use sim_kernel::vfs::Mode;

/// Catalog entries for this module.
pub fn catalog() -> Vec<CatalogItem> {
    vec![
        CatalogItem {
            path: "/usr/bin/tcptraceroute",
            entry: BinEntry {
                func: tcptraceroute_main,
                points: &["start", "socket_fail", "probe_blocked", "hop", "reached"],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/usr/bin/lppasswd",
            entry: BinEntry {
                func: lppasswd_main,
                points: &["start", "legacy_rewrite", "protego_fragment", "write_fail"],
            },
            setuid: true,
        },
        CatalogItem {
            path: "/sbin/mount.ecryptfs_private",
            entry: BinEntry {
                func: ecryptfs_main,
                points: &["start", "mount_ok", "mount_denied"],
            },
            setuid: true,
        },
    ]
}

/// `tcptraceroute <ip>` — TTL-stepped TCP SYN probes to port 80.
pub fn tcptraceroute_main(p: &mut Proc<'_>) -> i32 {
    use sim_kernel::net::{Domain, SockType};
    p.cov("start");
    let dst = match p.args.first().and_then(|a| Ipv4::parse(a)) {
        Some(ip) => ip,
        None => {
            p.println("usage: tcptraceroute <ipv4-address>");
            return 2;
        }
    };
    let fd = match p.os().socket(Domain::Inet, SockType::Raw, 6) {
        Ok(fd) => fd,
        Err(e) => {
            p.cov("socket_fail");
            return fail(p, "tcptraceroute", "raw socket", e);
        }
    };
    if p.sys.mode == SystemMode::Legacy && p.euid().is_root() && !p.ruid().is_root() {
        let ruid = p.ruid();
        let _ = p.os().setuid(ruid);
    }
    let src = p
        .sys
        .kernel
        .simnet
        .local_ips
        .last()
        .copied()
        .unwrap_or(Ipv4::LOOPBACK);
    for ttl in 1..=16u8 {
        let probe = Packet {
            src,
            dst,
            ttl,
            l4: L4::Tcp {
                src_port: 40000 + ttl as u16,
                dst_port: 80,
                syn: true,
            },
            payload: Vec::new(),
            from_raw_socket: true,
            sender_uid: p.euid(),
        };
        if let Err(e) = p.os().send_packet(fd, probe) {
            // On a default Protego policy the raw-TCP probe is filtered;
            // the admin must refine the whitelist (§5.4).
            p.cov("probe_blocked");
            return fail(p, "tcptraceroute", "probe filtered by policy", e);
        }
        match p.os().recv_packet(fd) {
            Ok(reply) => match reply.l4 {
                L4::Icmp(IcmpKind::TimeExceeded) => {
                    p.cov("hop");
                    p.println(&format!("{:2}  {}", ttl, reply.src));
                }
                _ => {
                    p.cov("reached");
                    p.println(&format!("{:2}  {}  [open]", ttl, reply.src));
                    return 0;
                }
            },
            Err(_) => {
                // The SYN reached an open port: our simulated hosts do not
                // answer raw SYNs, so treat silence past the path as done.
                if ttl > 4 {
                    p.cov("reached");
                    p.println(&format!("{:2}  {}  [open]", ttl, dst));
                    return 0;
                }
            }
        }
    }
    1
}

/// `lppasswd <newpassword>` — sets the caller's CUPS digest.
pub fn lppasswd_main(p: &mut Proc<'_>) -> i32 {
    p.vuln("start");
    let newpw = match p.args.first() {
        Some(w) => w.clone(),
        None => {
            p.println("usage: lppasswd <newpassword>");
            return 2;
        }
    };
    let uid = p.ruid();
    let me = {
        let text = p.read_to_string("/etc/passwd").unwrap_or_default();
        crate::db::parse_db(&text, crate::db::PasswdEntry::parse)
            .into_iter()
            .find(|e| e.uid == uid.0)
    };
    let me = match me {
        Some(e) => e,
        None => return fail(p, "lppasswd", "who are you?", Errno::ENOENT),
    };
    let digest = sim_crypt("lp", &format!("{}:{}", me.name, newpw));

    if p.sys.mode == SystemMode::Legacy {
        if !p.euid().is_root() {
            return fail(p, "lppasswd", "must be setuid root", Errno::EPERM);
        }
        // Rewrite the shared digest file.
        p.cov("legacy_rewrite");
        let old = p.read_to_string("/etc/cups/passwd.md5").unwrap_or_default();
        let mut lines: Vec<String> = old
            .lines()
            .filter(|l| !l.starts_with(&format!("{}:", me.name)))
            .map(String::from)
            .collect();
        lines.push(format!("{}:{}", me.name, digest));
        let content = lines.join("\n") + "\n";
        if let Err(e) = p.write_file("/etc/cups/passwd.md5", content.as_bytes(), Mode(0o600)) {
            p.cov("write_fail");
            return fail(p, "lppasswd", "/etc/cups/passwd.md5", e);
        }
    } else {
        // Per-user fragment, plain owner DAC (§4.4's pattern).
        p.cov("protego_fragment");
        let frag = format!("/etc/cups/passwds/{}", me.name);
        let line = format!("{}:{}\n", me.name, digest);
        if let Err(e) = p.write_file(&frag, line.as_bytes(), Mode(0o600)) {
            p.cov("write_fail");
            return fail(p, "lppasswd", &frag, e);
        }
    }
    p.println("lppasswd: password updated");
    0
}

/// `mount.ecryptfs_private` — mounts the caller's encrypted Private
/// directory at `~/Private`.
pub fn ecryptfs_main(p: &mut Proc<'_>) -> i32 {
    p.cov("start");
    let uid = p.ruid();
    let me = {
        let text = p.read_to_string("/etc/passwd").unwrap_or_default();
        crate::db::parse_db(&text, crate::db::PasswdEntry::parse)
            .into_iter()
            .find(|e| e.uid == uid.0)
    };
    let me = match me {
        Some(e) => e,
        None => return fail(p, "mount.ecryptfs_private", "who are you?", Errno::ENOENT),
    };
    let target = format!("{}/Private", me.home);
    if p.sys.mode == SystemMode::Legacy && !p.euid().is_root() {
        return fail(
            p,
            "mount.ecryptfs_private",
            "must be setuid root",
            Errno::EPERM,
        );
    }
    match p.os().mount("ecryptfs", &target, "fuse", "rw") {
        Ok(()) => {
            p.cov("mount_ok");
            p.println(&format!("ecryptfs mounted on {}", target));
            0
        }
        Err(e) => {
            p.cov("mount_denied");
            fail(p, "mount.ecryptfs_private", &target, e)
        }
    }
}
