//! The trusted monitoring daemon (§2, Figure 1).
//!
//! Watches policy-relevant configuration files (via the VFS's
//! inotify-style version counters) and keeps the kernel policy
//! synchronized:
//!
//! * `/etc/fstab` → `/proc/protego/mounts`
//! * `/etc/sudoers` (+ `/etc/sudoers.d/*`) → `/proc/protego/sudoers`
//! * `/etc/bind` → `/proc/protego/bind`
//! * `/etc/gshadow` + `/etc/gshadows/*` → `/proc/protego/groups`
//! * `/etc/ppp/options` → `/proc/protego/ppp`
//!
//! It also maintains the *reverse* direction for backward compatibility
//! (§4.4): Protego's per-account fragments under `/etc/passwds/`,
//! `/etc/shadows/`, and `/etc/gshadows/` are mirrored into the legacy
//! shared files so unmodified applications keep working.

use crate::db::{parse_db, GshadowEntry, PasswdEntry, ShadowEntry};
use crate::process::Process;
use protego_core::fstab::{fstab_to_policy, parse_fstab};
use protego_core::policy::{self, GroupRule, SudoRule};
use protego_core::sudoers::{parse_sudoers, MapResolver};
use sim_kernel::error::KResult;
use sim_kernel::kernel::Kernel;
use sim_kernel::sync::lock;
use sim_kernel::task::Pid;
use sim_kernel::trace::{AuditEvent, AuditSink};
use sim_kernel::vfs::Mode;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// How many rendered denial lines the daemon's feed retains.
const FEED_CAPACITY: usize = 256;

/// What the daemon has observed on the kernel's audit stream.
#[derive(Debug, Default)]
pub struct AuditFeed {
    /// Total events observed.
    pub events_seen: u64,
    /// Denial events observed (counted even after lines rotate out).
    pub denials_seen: u64,
    /// Rendered lines of the most recent denials (bounded).
    pub recent_denials: Vec<String>,
}

/// The audit-sink handle the daemon registers with the kernel. Clones
/// share the feed, so the daemon keeps reading what the kernel writes.
#[derive(Debug, Clone)]
pub struct MonitorSink(Arc<Mutex<AuditFeed>>);

impl AuditSink for MonitorSink {
    fn on_event(&mut self, ev: &AuditEvent) {
        let mut feed = lock(&self.0);
        feed.events_seen += 1;
        if ev.is_denial() {
            feed.denials_seen += 1;
            if feed.recent_denials.len() == FEED_CAPACITY {
                feed.recent_denials.remove(0);
            }
            feed.recent_denials.push(ev.render());
        }
    }
}

/// The monitoring daemon's state.
#[derive(Debug)]
pub struct MonitorDaemon {
    /// The daemon's (root) task.
    pub pid: Pid,
    seen: BTreeMap<String, u64>,
    /// Number of kernel-policy updates pushed.
    pub syncs: u64,
    /// Parse problems encountered (logged, not fatal — the previous
    /// kernel policy stays in force, as the paper's daemon does).
    pub errors: Vec<String>,
    feed: Arc<Mutex<AuditFeed>>,
}

impl MonitorDaemon {
    /// Creates the daemon running as task `pid` (must be root).
    pub fn new(pid: Pid) -> MonitorDaemon {
        MonitorDaemon {
            pid,
            seen: BTreeMap::new(),
            syncs: 0,
            errors: Vec::new(),
            feed: Arc::new(Mutex::new(AuditFeed::default())),
        }
    }

    /// Subscribes the daemon to the kernel's structured audit stream; the
    /// kernel pushes every event into the shared feed from then on.
    pub fn subscribe(&self, k: &Kernel) {
        k.subscribe_sink(Box::new(MonitorSink(Arc::clone(&self.feed))));
    }

    /// Total audit events observed through the subscription.
    pub fn audit_events_seen(&self) -> u64 {
        lock(&self.feed).events_seen
    }

    /// Denial events observed through the subscription.
    pub fn audit_denials_seen(&self) -> u64 {
        lock(&self.feed).denials_seen
    }

    /// Rendered lines of the most recent denials (bounded buffer).
    pub fn recent_denials(&self) -> Vec<String> {
        lock(&self.feed).recent_denials.clone()
    }

    /// The daemon's typed syscall context — all of its file IO goes
    /// through dispatch, like any other userland component.
    fn os<'k>(&self, k: &'k Kernel) -> Process<'k> {
        Process::new(k, self.pid)
    }

    fn version(&self, k: &Kernel, path: &str) -> Option<u64> {
        k.vfs
            .resolve(k.vfs.root(), path)
            .ok()
            .map(|r| k.vfs.inode(r.ino).version)
    }

    fn changed(&mut self, k: &Kernel, path: &str) -> bool {
        let v = self.version(k, path);
        let prev = self.seen.get(path).copied();
        match v {
            Some(v) if Some(v) != prev => {
                self.seen.insert(path.to_string(), v);
                true
            }
            None if prev.is_some() => {
                self.seen.remove(path);
                true
            }
            _ => false,
        }
    }

    fn dir_signature(&self, k: &Kernel, dir: &str) -> Option<u64> {
        // Combined signature of the directory and every file in it.
        let names = self.os(k).readdir(dir).ok()?;
        let mut sig = self.version(k, dir).unwrap_or(0);
        for n in names {
            sig = sig
                .wrapping_mul(1_000_003)
                .wrapping_add(self.version(k, &format!("{}/{}", dir, n)).unwrap_or(0));
        }
        Some(sig)
    }

    fn dir_changed(&mut self, k: &Kernel, dir: &str) -> bool {
        let sig = self.dir_signature(k, dir);
        let key = format!("dir:{}", dir);
        let prev = self.seen.get(&key).copied();
        match sig {
            Some(s) if Some(s) != prev => {
                self.seen.insert(key, s);
                true
            }
            None if prev.is_some() => {
                self.seen.remove(&key);
                true
            }
            _ => false,
        }
    }

    /// Performs a full synchronization pass (used at boot).
    pub fn sync_all(&mut self, k: &Kernel) -> KResult<()> {
        // Prime the watch state.
        for p in [
            "/etc/fstab",
            "/etc/sudoers",
            "/etc/bind",
            "/etc/gshadow",
            "/etc/ppp/options",
        ] {
            self.changed(k, p);
        }
        for d in [
            "/etc/sudoers.d",
            "/etc/passwds",
            "/etc/shadows",
            "/etc/gshadows",
        ] {
            self.dir_changed(k, d);
        }
        self.sync_mounts(k)?;
        self.sync_sudoers(k)?;
        self.sync_bind(k)?;
        self.sync_groups(k)?;
        self.sync_ppp(k)?;
        self.reverse_sync_credentials(k)?;
        Ok(())
    }

    /// One poll cycle: re-syncs whatever changed; returns whether any
    /// policy was pushed.
    pub fn poll(&mut self, k: &Kernel) -> KResult<bool> {
        let mut any = false;
        if self.changed(k, "/etc/fstab") {
            self.sync_mounts(k)?;
            any = true;
        }
        let sudoers_changed =
            self.changed(k, "/etc/sudoers") | self.dir_changed(k, "/etc/sudoers.d");
        if sudoers_changed {
            self.sync_sudoers(k)?;
            any = true;
        }
        if self.changed(k, "/etc/bind") {
            self.sync_bind(k)?;
            any = true;
        }
        let groups_changed = self.changed(k, "/etc/gshadow") | self.dir_changed(k, "/etc/gshadows");
        if groups_changed {
            self.sync_groups(k)?;
            any = true;
        }
        if self.changed(k, "/etc/ppp/options") {
            self.sync_ppp(k)?;
            any = true;
        }
        let cred_changed = self.dir_changed(k, "/etc/passwds")
            | self.dir_changed(k, "/etc/shadows")
            | self.dir_changed(k, "/etc/gshadows");
        if cred_changed {
            self.reverse_sync_credentials(k)?;
            any = true;
        }
        Ok(any)
    }

    fn push(&mut self, k: &Kernel, node: &str, content: &str) -> KResult<()> {
        self.os(k).write_file(
            &format!("/proc/protego/{}", node),
            content.as_bytes(),
            Mode(0o600),
        )?;
        self.syncs += 1;
        Ok(())
    }

    fn sync_mounts(&mut self, k: &Kernel) -> KResult<()> {
        let text = self.os(k).read_to_string("/etc/fstab").unwrap_or_default();
        let (entries, bad) = parse_fstab(&text);
        for b in bad {
            self.errors.push(format!("fstab: skipped '{}'", b));
        }
        let rules = fstab_to_policy(&entries);
        self.push(k, "mounts", &policy::render_mounts(&rules))
    }

    fn resolver(&self, k: &Kernel) -> MapResolver {
        let mut r = MapResolver::default();
        if let Ok(passwd) = self.os(k).read_to_string("/etc/passwd") {
            for e in parse_db(&passwd, PasswdEntry::parse) {
                r.users.push((e.name, e.uid));
            }
        }
        if let Ok(group) = self.os(k).read_to_string("/etc/group") {
            for e in parse_db(&group, crate::db::GroupEntry::parse) {
                r.groups.push((e.name, e.gid));
            }
        }
        r
    }

    fn sync_sudoers(&mut self, k: &Kernel) -> KResult<()> {
        let mut text = self
            .os(k)
            .read_to_string("/etc/sudoers")
            .unwrap_or_default();
        if let Ok(names) = self.os(k).readdir("/etc/sudoers.d") {
            for n in names {
                if let Ok(extra) = self.os(k).read_to_string(&format!("/etc/sudoers.d/{}", n)) {
                    text.push('\n');
                    text.push_str(&extra);
                }
            }
        }
        let resolver = self.resolver(k);
        let (mut rules, errors) = parse_sudoers(&text, &resolver);
        for e in errors {
            self.errors
                .push(format!("sudoers line {}: {}", e.line, e.message));
        }
        // Protego explicates the policies of su as an extended rule (§4.3).
        rules.push(SudoRule::su_rule());
        self.push(k, "sudoers", &policy::render_sudo(&rules))
    }

    fn sync_bind(&mut self, k: &Kernel) -> KResult<()> {
        let text = self.os(k).read_to_string("/etc/bind").unwrap_or_default();
        // /etc/bind already uses the kernel grammar; validate before push.
        match policy::parse_binds(&text) {
            Ok(rules) => self.push(k, "bind", &policy::render_binds(&rules)),
            Err(e) => {
                self.errors.push(format!("bind: {}", e));
                Ok(())
            }
        }
    }

    fn sync_groups(&mut self, k: &Kernel) -> KResult<()> {
        let mut rules: Vec<GroupRule> = Vec::new();
        let groups = self.os(k).read_to_string("/etc/group").unwrap_or_default();
        let gshadow = self
            .os(k)
            .read_to_string("/etc/gshadow")
            .unwrap_or_default();
        let gsh = parse_db(&gshadow, GshadowEntry::parse);
        for g in parse_db(&groups, crate::db::GroupEntry::parse) {
            let protected = gsh
                .iter()
                .find(|e| e.name == g.name)
                .map(|e| e.password_protected())
                .unwrap_or(false);
            rules.push(GroupRule {
                gid: g.gid,
                password_protected: protected,
            });
        }
        self.push(k, "groups", &policy::render_groups(&rules))
    }

    fn sync_ppp(&mut self, k: &Kernel) -> KResult<()> {
        let text = self
            .os(k)
            .read_to_string("/etc/ppp/options")
            .unwrap_or_default();
        let mut p = policy::PppPolicy::default();
        for line in text.lines() {
            match line.trim() {
                "user-routes" => p.user_routes = true,
                "safe-modem-opts" => p.safe_modem_opts = true,
                _ => {}
            }
        }
        self.push(k, "ppp", &policy::render_ppp(&p))
    }

    /// Rebuilds the legacy shared credential files from the per-account
    /// fragments, preserving entries that have no fragment (system
    /// accounts created before fragmentation).
    pub fn reverse_sync_credentials(&mut self, k: &Kernel) -> KResult<()> {
        self.mirror_fragments(k, "/etc/passwds", "/etc/passwd", Mode(0o644), |line| {
            PasswdEntry::parse(line).map(|e| (e.name.clone(), e.render()))
        })?;
        self.mirror_fragments(k, "/etc/shadows", "/etc/shadow", Mode(0o600), |line| {
            ShadowEntry::parse(line).map(|e| (e.name.clone(), e.render()))
        })?;
        self.mirror_fragments(k, "/etc/gshadows", "/etc/gshadow", Mode(0o600), |line| {
            GshadowEntry::parse(line).map(|e| (e.name.clone(), e.render()))
        })?;
        Ok(())
    }

    fn mirror_fragments(
        &mut self,
        k: &Kernel,
        frag_dir: &str,
        legacy: &str,
        mode: Mode,
        parse: impl Fn(&str) -> Option<(String, String)>,
    ) -> KResult<()> {
        let names = match self.os(k).readdir(frag_dir) {
            Ok(n) => n,
            Err(_) => return Ok(()), // legacy-only system
        };
        // Start from the legacy file so unfragmented entries survive.
        let mut entries: Vec<(String, String)> = Vec::new();
        if let Ok(old) = self.os(k).read_to_string(legacy) {
            for line in old.lines() {
                if let Some(kv) = parse(line) {
                    entries.push(kv);
                }
            }
        }
        for n in &names {
            if let Ok(frag) = self.os(k).read_to_string(&format!("{}/{}", frag_dir, n)) {
                for line in frag.lines() {
                    if let Some((name, rendered)) = parse(line) {
                        if let Some(e) = entries.iter_mut().find(|(n2, _)| *n2 == name) {
                            e.1 = rendered;
                        } else {
                            entries.push((name, rendered));
                        }
                    }
                }
            }
        }
        let content: String = entries.iter().map(|(_, r)| format!("{}\n", r)).collect();
        self.os(k).write_file(legacy, content.as_bytes(), mode)?;
        self.syncs += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protego_core::ProtegoLsm;
    use sim_kernel::cred::{Gid, Uid};
    use sim_kernel::net::SimNet;

    fn boot() -> (Kernel, Pid) {
        let k = Kernel::new(SimNet::new());
        k.install_standard_devices().unwrap();
        k.register_lsm(Box::new(ProtegoLsm::new())).unwrap();
        let root = k.spawn_init();
        k.vfs
            .install_file(
                "/etc/fstab",
                protego_core::fstab::DEFAULT_FSTAB.as_bytes(),
                Mode(0o644),
                Uid::ROOT,
                Gid::ROOT,
            )
            .unwrap();
        k.vfs
            .install_file(
                "/etc/passwd",
                b"root:x:0:0:r:/root:/bin/sh\nalice:x:1000:1000:A:/home/alice:/bin/sh\n",
                Mode(0o644),
                Uid::ROOT,
                Gid::ROOT,
            )
            .unwrap();
        k.vfs
            .install_file(
                "/etc/group",
                b"admin:x:27:alice\nstaff:x:101:\n",
                Mode(0o644),
                Uid::ROOT,
                Gid::ROOT,
            )
            .unwrap();
        k.vfs
            .install_file(
                "/etc/sudoers",
                b"%admin ALL=(ALL) ALL\n",
                Mode(0o440),
                Uid::ROOT,
                Gid::ROOT,
            )
            .unwrap();
        k.vfs.mkdir_p("/etc/sudoers.d").unwrap();
        (k, root)
    }

    #[test]
    fn boot_sync_pushes_policies() {
        let (k, root) = boot();
        let mut d = MonitorDaemon::new(root);
        d.sync_all(&k).unwrap();
        let mounts = k.read_to_string(root, "/proc/protego/mounts").unwrap();
        assert!(mounts.contains("/dev/cdrom /mnt/cdrom iso9660 user ro"));
        assert!(mounts.contains("/dev/sdb1 /media/usb vfat users"));
        let sudo = k.read_to_string(root, "/proc/protego/sudoers").unwrap();
        assert!(sudo.contains("from=gid:27 target=any cmd=any auth=invoker"));
        assert!(sudo.contains("from=any target=any cmd=any auth=target")); // su rule
        assert!(d.errors.is_empty(), "{:?}", d.errors);
    }

    #[test]
    fn poll_detects_fstab_change() {
        let (k, root) = boot();
        let mut d = MonitorDaemon::new(root);
        d.sync_all(&k).unwrap();
        assert!(!d.poll(&k).unwrap());
        // Admin adds a new user-mountable entry.
        k.append_file(
            root,
            "/etc/fstab",
            b"/dev/cdrom /mnt/backup iso9660 ro,users,noauto 0 0\n",
        )
        .unwrap();
        assert!(d.poll(&k).unwrap());
        let mounts = k.read_to_string(root, "/proc/protego/mounts").unwrap();
        assert!(mounts.contains("/mnt/backup"));
    }

    #[test]
    fn sudoers_d_included() {
        let (k, root) = boot();
        let mut d = MonitorDaemon::new(root);
        d.sync_all(&k).unwrap();
        k.write_file(
            root,
            "/etc/sudoers.d/printing",
            b"alice ALL=(root) NOPASSWD: /usr/bin/lpr\n",
            Mode(0o440),
        )
        .unwrap();
        assert!(d.poll(&k).unwrap());
        let sudo = k.read_to_string(root, "/proc/protego/sudoers").unwrap();
        assert!(sudo.contains("cmd=/usr/bin/lpr auth=none"));
    }

    #[test]
    fn bad_sudoers_line_logged_not_fatal() {
        let (k, root) = boot();
        k.append_file(root, "/etc/sudoers", b"mallory ALL=(ALL) ALL\n")
            .unwrap();
        let mut d = MonitorDaemon::new(root);
        d.sync_all(&k).unwrap();
        assert!(d.errors.iter().any(|e| e.contains("mallory")));
        // The admin rule still made it in.
        let sudo = k.read_to_string(root, "/proc/protego/sudoers").unwrap();
        assert!(sudo.contains("from=gid:27"));
    }

    #[test]
    fn reverse_sync_rebuilds_legacy_shadow() {
        let (k, root) = boot();
        let mut d = MonitorDaemon::new(root);
        // Fragmented layout with one user file.
        let frag = crate::db::ShadowEntry::with_password("alice", "alicepw");
        k.vfs
            .install_file(
                "/etc/shadows/alice",
                format!("{}\n", frag.render()).as_bytes(),
                Mode(0o600),
                Uid(1000),
                Gid(1000),
            )
            .unwrap();
        k.vfs
            .install_file(
                "/etc/shadow",
                format!(
                    "{}\n",
                    crate::db::ShadowEntry::with_password("root", "rootpw").render()
                )
                .as_bytes(),
                Mode(0o600),
                Uid::ROOT,
                Gid::ROOT,
            )
            .unwrap();
        d.sync_all(&k).unwrap();
        let legacy = k.read_to_string(root, "/etc/shadow").unwrap();
        assert!(legacy.contains("root:"));
        assert!(legacy.contains("alice:"));
        // Password change in the fragment propagates on poll.
        let newfrag = crate::db::ShadowEntry::with_password("alice", "changed");
        k.write_file(
            root,
            "/etc/shadows/alice",
            format!("{}\n", newfrag.render()).as_bytes(),
            Mode(0o600),
        )
        .unwrap();
        assert!(d.poll(&k).unwrap());
        let legacy = k.read_to_string(root, "/etc/shadow").unwrap();
        assert!(legacy.contains(&newfrag.hash));
    }

    #[test]
    fn subscribed_daemon_sees_denials() {
        let (k, root) = boot();
        let mut d = MonitorDaemon::new(root);
        d.sync_all(&k).unwrap();
        d.subscribe(&k);
        assert_eq!(d.audit_denials_seen(), 0);
        // An unprivileged mount off the whitelist is denied by the stock
        // fallback — the daemon's feed must carry the event.
        let user = k.spawn_session(
            sim_kernel::cred::Credentials::user(Uid(1000), Gid(1000)),
            "/bin/mount",
        );
        k.vfs.mkdir_p("/mnt/nope").unwrap();
        assert!(k
            .sys_mount(user, "/dev/sdb1", "/mnt/nope", "vfat", "rw")
            .is_err());
        assert!(d.audit_events_seen() >= 1);
        assert_eq!(d.audit_denials_seen(), 1);
        let lines = d.recent_denials();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("decision=deny"), "{}", lines[0]);
        assert!(lines[0].contains("hook=sb_mount"), "{}", lines[0]);
    }

    #[test]
    fn groups_sync_marks_protected() {
        let (k, root) = boot();
        let gsh = crate::db::GshadowEntry {
            name: "staff".into(),
            hash: sim_kernel::lsm::sim_crypt("st", "staffpw"),
        };
        k.vfs
            .install_file(
                "/etc/gshadow",
                format!("admin:!::\n{}\n", gsh.render()).as_bytes(),
                Mode(0o600),
                Uid::ROOT,
                Gid::ROOT,
            )
            .unwrap();
        let mut d = MonitorDaemon::new(root);
        d.sync_all(&k).unwrap();
        let groups = k.read_to_string(root, "/proc/protego/groups").unwrap();
        assert!(groups.contains("101 password"));
        assert!(groups.contains("27 open"));
    }
}
