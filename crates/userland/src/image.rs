//! The distribution image builder: boots either system of the paper's
//! evaluation with the same users, configuration, and program complement.
//!
//! * [`SystemMode::Legacy`] — stock Linux 3.6 semantics with AppArmor
//!   enabled (the paper's baseline: "AppArmor and iptables with no
//!   firewall rules"; the studied setuid binaries are, as on a default
//!   Ubuntu 12.04, *not* confined) and the classic setuid-root binaries.
//! * [`SystemMode::Protego`] — the Protego LSM, no setuid bits anywhere,
//!   the trusted authentication agent, the monitoring daemon, and the
//!   fragmented credential databases.

use crate::authd::AuthDaemon;
use crate::db::{render_db, GroupEntry, GshadowEntry, PasswdEntry, ShadowEntry};
use crate::monitord::MonitorDaemon;
use crate::system::{System, SystemMode};
use apparmor_lsm::AppArmorLsm;
use protego_core::ProtegoLsm;
use sim_kernel::cred::{Gid, Uid};
use sim_kernel::kernel::Kernel;
use sim_kernel::lsm::sim_crypt;
use sim_kernel::net::{Ipv4, Route, SimNet};
use sim_kernel::vfs::Mode;

/// A user account in the image.
pub struct UserSpec {
    /// Login name.
    pub name: &'static str,
    /// Uid.
    pub uid: u32,
    /// Primary gid.
    pub gid: u32,
    /// Password, or `None` for a locked system account.
    pub password: Option<&'static str>,
    /// GECOS field.
    pub gecos: &'static str,
    /// Supplementary groups.
    pub extra_groups: &'static [u32],
}

/// The image's user accounts.
pub const USERS: &[UserSpec] = &[
    UserSpec {
        name: "root",
        uid: 0,
        gid: 0,
        password: Some("rootpw"),
        gecos: "root",
        extra_groups: &[],
    },
    UserSpec {
        name: "mail",
        uid: 8,
        gid: 8,
        password: None,
        gecos: "mail system",
        extra_groups: &[],
    },
    UserSpec {
        name: "www-data",
        uid: 33,
        gid: 33,
        password: None,
        gecos: "web server",
        extra_groups: &[],
    },
    UserSpec {
        name: "alice",
        uid: 1000,
        gid: 1000,
        password: Some("alicepw"),
        gecos: "Alice",
        extra_groups: &[24, 20, 2000],
    },
    UserSpec {
        name: "bob",
        uid: 1001,
        gid: 1001,
        password: Some("bobpw"),
        gecos: "Bob",
        extra_groups: &[],
    },
    UserSpec {
        name: "carol",
        uid: 1002,
        gid: 1002,
        password: Some("carolpw"),
        gecos: "Carol",
        extra_groups: &[27],
    },
];

/// The image's groups: (name, gid, members).
pub const GROUPS: &[(&str, u32, &[&str])] = &[
    ("root", 0, &[]),
    ("mail", 8, &["mail"]),
    ("dialout", 20, &["alice"]),
    ("cdrom", 24, &["alice"]),
    ("admin", 27, &["carol"]),
    ("www-data", 33, &[]),
    ("alice", 1000, &[]),
    ("bob", 1001, &[]),
    ("carol", 1002, &[]),
    ("staff", 2000, &["alice"]),
];

/// The password of the password-protected `staff` group.
pub const STAFF_GROUP_PASSWORD: &str = "staffpw";

/// Baseline AppArmor profile set: as on a default Ubuntu install, the
/// studied setuid binaries are unconfined; something unrelated (tcpdump)
/// is.
const LEGACY_APPARMOR_PROFILES: &str = r#"
profile /usr/sbin/tcpdump {
  capability net_raw,
  /etc/hosts r,
}
"#;

/// The image's sudoers policy: admins may do anything; Bob may print as
/// Alice (the paper's delegation example, §4.3).
pub const IMAGE_SUDOERS: &str = "\
Defaults env_keep += \"LANG\"
root    ALL=(ALL) ALL
%admin  ALL=(ALL) ALL
bob     ALL=(alice) /usr/bin/lpr
";

/// `/etc/bind`: port allocations for the two services (§4.1.3).
pub const IMAGE_BIND: &str = "\
25 tcp /usr/sbin/exim4 8
80 tcp /usr/sbin/httpd 33
";

/// Boots a complete system image in the given mode.
pub fn boot(mode: SystemMode) -> System {
    let mut kernel = Kernel::new(SimNet::standard_topology());
    kernel.install_standard_devices().expect("devices install");

    match mode {
        SystemMode::Legacy => {
            let mut lsm = AppArmorLsm::new();
            lsm.load_text(LEGACY_APPARMOR_PROFILES)
                .expect("baseline profiles parse");
            kernel.register_lsm(Box::new(lsm)).expect("lsm registers");
        }
        SystemMode::Protego => {
            kernel
                .register_lsm(Box::new(ProtegoLsm::new()))
                .expect("lsm registers");
            kernel.register_auth(Box::new(AuthDaemon::new()));
            // The Protego image models a contemporary kernel where
            // unprivileged user namespaces already obviated the sandbox
            // helpers (§4.6); the legacy baseline is Linux 3.6.
            kernel.unprivileged_userns = true;
        }
    }

    let mut sys = System::new(kernel, mode);
    let init = sys.init_pid();

    build_tree(&mut sys);
    build_accounts(&mut sys);
    install_binaries(&mut sys);
    crate::bins::mount::init_mtab(&sys.kernel).expect("mtab");

    // Boot-time network configuration (root's job on both systems).
    sys.kernel
        .routes
        .write()
        .add(Route {
            dest: Ipv4::ANY,
            prefix: 0,
            gateway: Some(Ipv4::new(10, 0, 0, 1)),
            dev: "eth0".into(),
            created_by: Uid::ROOT,
        })
        .expect("default route");

    if mode == SystemMode::Protego {
        // Policies with no legacy file equivalent are configured directly
        // by the administrator through /proc (Figure 1's left input).
        sys.kernel
            .write_file(
                init,
                "/proc/protego/keyfiles",
                b"/etc/ssh/ssh_host_key /usr/lib/ssh-keysign\n",
                Mode(0o600),
            )
            .expect("keyfiles policy");
        sys.kernel
            .write_file(
                init,
                "/proc/protego/creddb",
                b"shadow-prefix /etc/shadows/\n",
                Mode(0o600),
            )
            .expect("creddb policy");
        // The monitoring daemon mirrors every legacy config file and
        // subscribes to the kernel's structured audit stream.
        let mut daemon = MonitorDaemon::new(init);
        daemon.sync_all(&sys.kernel).expect("initial sync");
        daemon.subscribe(&sys.kernel);
        sys.monitord = Some(daemon);
    }
    sys
}

fn build_tree(sys: &mut System) {
    let v = &sys.kernel.vfs;
    for d in [
        "/bin",
        "/sbin",
        "/usr/bin",
        "/usr/sbin",
        "/usr/lib",
        "/lib/modules",
        "/etc/sudoers.d",
        "/etc/ppp",
        "/etc/ssh",
        "/mnt/cdrom",
        "/media/usb",
        "/var/log/exim4",
        "/var/spool/lpd",
        "/var/lib",
        "/root",
    ] {
        v.mkdir_p(d).expect("mkdir");
    }
    let tmp = v.mkdir_p("/tmp").unwrap();
    v.inode_mut(tmp).mode = Mode(0o1777);
    let mail = v.mkdir_p("/var/mail").unwrap();
    v.inode_mut(mail).mode = Mode(0o2775);
    v.inode_mut(mail).gid = Gid(8);
    v.mkdir_p("/var/www").unwrap();
    v.install_file(
        crate::bins::mail::HTTPD_DOCROOT_INDEX,
        crate::bins::mail::HTTPD_FALLBACK_PAGE.as_bytes(),
        Mode(0o644),
        Uid::ROOT,
        Gid::ROOT,
    )
    .unwrap();
    let sudo_lib = v.mkdir_p("/var/lib/sudo").unwrap();
    v.inode_mut(sudo_lib).mode = Mode(0o700);

    // Device node group ownership: the classic cdrom/dialout groups.
    for (path, gid) in [("/dev/cdrom", 24), ("/dev/sdb1", 24), ("/dev/ttyS0", 20)] {
        let ino = v.resolve(v.root(), path).unwrap().ino;
        v.inode_mut(ino).gid = Gid(gid);
    }

    v.install_file(
        "/etc/fstab",
        protego_core::fstab::DEFAULT_FSTAB.as_bytes(),
        Mode(0o644),
        Uid::ROOT,
        Gid::ROOT,
    )
    .unwrap();
    v.install_file(
        "/etc/sudoers",
        IMAGE_SUDOERS.as_bytes(),
        Mode(0o440),
        Uid::ROOT,
        Gid::ROOT,
    )
    .unwrap();
    v.install_file(
        "/etc/bind",
        IMAGE_BIND.as_bytes(),
        Mode(0o644),
        Uid::ROOT,
        Gid::ROOT,
    )
    .unwrap();
    v.install_file(
        "/etc/shells",
        b"/bin/sh\n/bin/bash\n/bin/zsh\n",
        Mode(0o644),
        Uid::ROOT,
        Gid::ROOT,
    )
    .unwrap();
    v.install_file(
        "/etc/hosts",
        b"127.0.0.1 localhost\n10.0.0.1 gateway\n8.8.8.8 resolver\n",
        Mode(0o644),
        Uid::ROOT,
        Gid::ROOT,
    )
    .unwrap();
    v.install_file(
        "/etc/ppp/options",
        b"user-routes\nsafe-modem-opts\n",
        Mode(0o644),
        Uid::ROOT,
        Gid::ROOT,
    )
    .unwrap();
    v.install_file(
        "/etc/ssh/ssh_host_key",
        b"HOSTKEY-SECRET-0xdeadbeef\n",
        Mode(0o600),
        Uid::ROOT,
        Gid::ROOT,
    )
    .unwrap();
    v.install_file(
        "/etc/motd",
        b"Welcome to the Protego evaluation image.\n",
        Mode(0o644),
        Uid::ROOT,
        Gid::ROOT,
    )
    .unwrap();
    // D-Bus activation rule: anyone may start the MTA service under its
    // service account (the dbus-daemon-launch-helper policy, kernelized).
    v.install_file(
        "/etc/sudoers.d/dbus",
        b"ALL ALL=(mail) NOPASSWD: /usr/sbin/exim4\n",
        Mode(0o440),
        Uid::ROOT,
        Gid::ROOT,
    )
    .unwrap();
    v.install_file(
        "/var/log/exim4/mainlog",
        b"",
        Mode(0o664),
        Uid::ROOT,
        Gid(8),
    )
    .unwrap();
}

fn build_accounts(sys: &mut System) {
    let mode = sys.mode;
    let v = &sys.kernel.vfs;

    let mut passwd: Vec<PasswdEntry> = Vec::new();
    let mut shadow: Vec<ShadowEntry> = Vec::new();
    for u in USERS {
        passwd.push(PasswdEntry {
            name: u.name.to_string(),
            uid: u.uid,
            gid: u.gid,
            gecos: u.gecos.to_string(),
            home: if u.uid == 0 {
                "/root".into()
            } else {
                format!("/home/{}", u.name)
            },
            shell: "/bin/sh".to_string(),
        });
        shadow.push(match u.password {
            Some(pw) => ShadowEntry::with_password(u.name, pw),
            None => ShadowEntry {
                name: u.name.to_string(),
                hash: "!".to_string(),
            },
        });
    }
    let groups: Vec<GroupEntry> = GROUPS
        .iter()
        .map(|(name, gid, members)| GroupEntry {
            name: name.to_string(),
            gid: *gid,
            members: members.iter().map(|m| m.to_string()).collect(),
        })
        .collect();
    let gshadow: Vec<GshadowEntry> = GROUPS
        .iter()
        .map(|(name, _, _)| GshadowEntry {
            name: name.to_string(),
            hash: if *name == "staff" {
                sim_crypt("st", STAFF_GROUP_PASSWORD)
            } else {
                "!".to_string()
            },
        })
        .collect();

    v.install_file(
        "/etc/passwd",
        render_db(&passwd, PasswdEntry::render).as_bytes(),
        Mode(0o644),
        Uid::ROOT,
        Gid::ROOT,
    )
    .unwrap();
    v.install_file(
        "/etc/shadow",
        render_db(&shadow, ShadowEntry::render).as_bytes(),
        Mode(0o600),
        Uid::ROOT,
        Gid::ROOT,
    )
    .unwrap();
    v.install_file(
        "/etc/group",
        render_db(&groups, GroupEntry::render).as_bytes(),
        Mode(0o644),
        Uid::ROOT,
        Gid::ROOT,
    )
    .unwrap();
    v.install_file(
        "/etc/gshadow",
        render_db(&gshadow, GshadowEntry::render).as_bytes(),
        Mode(0o600),
        Uid::ROOT,
        Gid::ROOT,
    )
    .unwrap();

    // Homes, mailboxes, print queue.
    for u in USERS {
        if u.uid == 0 {
            continue;
        }
        let home = format!("/home/{}", u.name);
        let ino = v.mkdir_p(&home).unwrap();
        v.inode_mut(ino).uid = Uid(u.uid);
        v.inode_mut(ino).gid = Gid(u.gid);
        if u.password.is_some() {
            v.install_file(
                &format!("/var/mail/{}", u.name),
                b"",
                Mode(0o660),
                Uid(u.uid),
                Gid(8),
            )
            .unwrap();
        }
    }
    // CUPS print passwords (the lppasswd long-tail case): a shared
    // digest file on legacy; per-user fragments on Protego.
    v.install_file(
        "/etc/cups/passwd.md5",
        b"",
        Mode(0o600),
        Uid::ROOT,
        Gid::ROOT,
    )
    .unwrap();
    if mode == SystemMode::Protego {
        for u in USERS {
            if u.password.is_some() && u.uid != 0 {
                v.install_file(
                    &format!("/etc/cups/passwds/{}", u.name),
                    b"",
                    Mode(0o600),
                    Uid(u.uid),
                    Gid(u.gid),
                )
                .unwrap();
            }
        }
    }
    // Encrypted Private directories (mount.ecryptfs_private).
    for u in USERS {
        if u.password.is_some() && u.uid != 0 {
            let private = format!("/home/{}/Private", u.name);
            let ino = v.mkdir_p(&private).unwrap();
            v.inode_mut(ino).uid = Uid(u.uid);
            v.inode_mut(ino).gid = Gid(u.gid);
        }
    }

    // Alice's private .forward (the §4.4 mail-delivery case).
    v.install_file(
        "/home/alice/.forward",
        b"/home/alice/inbox\n",
        Mode(0o600),
        Uid(1000),
        Gid(1000),
    )
    .unwrap();
    v.install_file("/home/alice/inbox", b"", Mode(0o600), Uid(1000), Gid(1000))
        .unwrap();
    // The delegation target: Alice's print queue.
    v.install_file(
        "/var/spool/lpd/queue",
        b"",
        Mode(0o600),
        Uid(1000),
        Gid(1000),
    )
    .unwrap();

    if mode == SystemMode::Protego {
        // Fragment the databases (§4.4): /etc/passwds/<user> and
        // /etc/shadows/<user>, each rw------- and owned by its account;
        // the parent directories are root-owned so accounts cannot be
        // added by unprivileged users.
        for (i, u) in USERS.iter().enumerate() {
            let owner = Uid(u.uid);
            let gid = Gid(u.gid);
            v.install_file(
                &format!("/etc/passwds/{}", u.name),
                format!("{}\n", passwd[i].render()).as_bytes(),
                Mode(0o600),
                owner,
                gid,
            )
            .unwrap();
            v.install_file(
                &format!("/etc/shadows/{}", u.name),
                format!("{}\n", shadow[i].render()).as_bytes(),
                Mode(0o600),
                owner,
                gid,
            )
            .unwrap();
        }
        // Per-group password fragments, owned by the group administrator
        // (alice administers staff).
        v.install_file(
            "/etc/gshadows/staff",
            format!("staff:{}::\n", sim_crypt("st", STAFF_GROUP_PASSWORD)).as_bytes(),
            Mode(0o600),
            Uid(1000),
            Gid(1000),
        )
        .unwrap();
    }
}

fn install_binaries(sys: &mut System) {
    let legacy = sys.mode == SystemMode::Legacy;
    for item in crate::bins::catalog() {
        let setuid = legacy && item.setuid;
        let mode = if setuid { Mode(0o4755) } else { Mode(0o755) };
        let owner = if item.path.starts_with("/home/alice/") {
            (Uid(1000), Gid(1000))
        } else {
            (Uid::ROOT, Gid::ROOT)
        };
        sys.kernel
            .vfs
            .install_file(item.path, b"#!sim-binary", mode, owner.0, owner.1)
            .expect("binary installs");
    }
    crate::bins::register_all(sys);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_image_has_setuid_bits() {
        let mut sys = boot(SystemMode::Legacy);
        let init = sys.init_pid();
        let st = sys.kernel.sys_stat(init, "/bin/mount").unwrap();
        assert!(st.mode.is_setuid());
        assert_eq!(st.uid, Uid::ROOT);
        let st = sys.kernel.sys_stat(init, "/usr/bin/sudo").unwrap();
        assert!(st.mode.is_setuid());
    }

    #[test]
    fn protego_image_has_no_setuid_binaries() {
        let mut sys = boot(SystemMode::Protego);
        let init = sys.init_pid();
        for item in crate::bins::catalog() {
            let st = sys.kernel.sys_stat(init, item.path).unwrap();
            assert!(
                !st.mode.is_setuid(),
                "{} still setuid on Protego",
                item.path
            );
        }
    }

    #[test]
    fn both_images_login_all_users() {
        for mode in [SystemMode::Legacy, SystemMode::Protego] {
            let mut sys = boot(mode);
            for (name, pw) in [
                ("root", "rootpw"),
                ("alice", "alicepw"),
                ("bob", "bobpw"),
                ("carol", "carolpw"),
            ] {
                let pid = sys.login(name, pw).unwrap();
                assert!(sys.kernel.task(pid).is_ok());
            }
            assert!(sys.login("mail", "x").is_err()); // locked
        }
    }

    #[test]
    fn protego_policies_synced_at_boot() {
        let mut sys = boot(SystemMode::Protego);
        let init = sys.init_pid();
        let mounts = sys
            .kernel
            .read_to_string(init, "/proc/protego/mounts")
            .unwrap();
        assert!(mounts.contains("/dev/cdrom /mnt/cdrom iso9660 user ro"));
        let sudoers = sys
            .kernel
            .read_to_string(init, "/proc/protego/sudoers")
            .unwrap();
        assert!(sudoers.contains("from=gid:27 target=any cmd=any"));
        assert!(sudoers.contains("from=uid:1001 target=1000 cmd=/usr/bin/lpr"));
        let bind = sys
            .kernel
            .read_to_string(init, "/proc/protego/bind")
            .unwrap();
        assert!(bind.contains("25 tcp /usr/sbin/exim4 8"));
        let groups = sys
            .kernel
            .read_to_string(init, "/proc/protego/groups")
            .unwrap();
        assert!(groups.contains("2000 password"));
        let ppp = sys
            .kernel
            .read_to_string(init, "/proc/protego/ppp")
            .unwrap();
        assert!(ppp.contains("user-routes on"));
    }

    #[test]
    fn protego_netfilter_whitelist_installed() {
        let sys = boot(SystemMode::Protego);
        let names: Vec<_> = sys
            .kernel
            .netfilter
            .read()
            .rules()
            .iter()
            .map(|r| r.name.clone())
            .collect();
        assert!(names.contains(&"protego-no-spoof".to_string()));
        assert!(names.contains(&"protego-drop-raw-default".to_string()));
    }

    #[test]
    fn legacy_netfilter_is_empty() {
        let sys = boot(SystemMode::Legacy);
        assert!(sys.kernel.netfilter.read().rules().is_empty());
    }

    #[test]
    fn alice_is_in_her_groups() {
        let mut sys = boot(SystemMode::Protego);
        let alice = sys.login("alice", "alicepw").unwrap();
        let cred = &sys.kernel.task(alice).unwrap().cred;
        assert!(cred.in_group(Gid(24)));
        assert!(cred.in_group(Gid(20)));
        assert!(cred.in_group(Gid(2000)));
        assert!(!cred.in_group(Gid(27)));
    }

    #[test]
    fn user_spec_groups_agree_with_group_table() {
        // `extra_groups` documents intent; /etc/group is the source of
        // truth — they must not drift apart.
        for u in USERS {
            for &gid in u.extra_groups {
                let (name, _, members) = GROUPS
                    .iter()
                    .find(|(_, g, _)| *g == gid)
                    .unwrap_or_else(|| panic!("{}: unknown group {}", u.name, gid));
                assert!(
                    members.contains(&u.name),
                    "{} listed in extra_groups of {} but not in GROUPS[{}]",
                    u.name,
                    gid,
                    name
                );
            }
        }
        for (gname, gid, members) in GROUPS {
            for m in *members {
                let u = USERS
                    .iter()
                    .find(|u| u.name == *m)
                    .unwrap_or_else(|| panic!("group {} member {} unknown", gname, m));
                assert!(
                    u.extra_groups.contains(gid) || u.gid == *gid,
                    "{} is in group {} but extra_groups omits it",
                    m,
                    gname
                );
            }
        }
    }

    #[test]
    fn fragments_exist_only_on_protego() {
        let mut sys = boot(SystemMode::Protego);
        let init = sys.init_pid();
        let st = sys.kernel.sys_stat(init, "/etc/shadows/alice").unwrap();
        assert_eq!(st.uid, Uid(1000));
        assert_eq!(st.mode, Mode(0o600));
        let mut sys = boot(SystemMode::Legacy);
        let init = sys.init_pid();
        assert!(sys.kernel.sys_stat(init, "/etc/shadows/alice").is_err());
    }
}
