//! Credential database file formats: passwd, shadow, group, gshadow — both
//! the legacy shared files and Protego's per-account fragments (§4.4).

use sim_kernel::lsm::sim_crypt;

/// One `/etc/passwd` record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PasswdEntry {
    /// Login name.
    pub name: String,
    /// Uid.
    pub uid: u32,
    /// Primary gid.
    pub gid: u32,
    /// GECOS (full name / office).
    pub gecos: String,
    /// Home directory.
    pub home: String,
    /// Login shell.
    pub shell: String,
}

impl PasswdEntry {
    /// Renders the classic colon format.
    pub fn render(&self) -> String {
        format!(
            "{}:x:{}:{}:{}:{}:{}",
            self.name, self.uid, self.gid, self.gecos, self.home, self.shell
        )
    }

    /// Parses a passwd line.
    pub fn parse(line: &str) -> Option<PasswdEntry> {
        let f: Vec<&str> = line.split(':').collect();
        if f.len() != 7 {
            return None;
        }
        Some(PasswdEntry {
            name: f[0].to_string(),
            uid: f[2].parse().ok()?,
            gid: f[3].parse().ok()?,
            gecos: f[4].to_string(),
            home: f[5].to_string(),
            shell: f[6].to_string(),
        })
    }
}

/// One `/etc/shadow` record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShadowEntry {
    /// Login name.
    pub name: String,
    /// Password hash (`sim_crypt` format) or `!` for locked.
    pub hash: String,
}

impl ShadowEntry {
    /// Renders the shadow format (aging fields fixed).
    pub fn render(&self) -> String {
        format!("{}:{}:19000:0:99999:7:::", self.name, self.hash)
    }

    /// Parses a shadow line.
    pub fn parse(line: &str) -> Option<ShadowEntry> {
        let f: Vec<&str> = line.split(':').collect();
        if f.len() < 2 {
            return None;
        }
        Some(ShadowEntry {
            name: f[0].to_string(),
            hash: f[1].to_string(),
        })
    }

    /// Builds an entry hashing `password` with a name-derived salt.
    pub fn with_password(name: &str, password: &str) -> ShadowEntry {
        let salt: String = name.chars().take(2).collect();
        ShadowEntry {
            name: name.to_string(),
            hash: sim_crypt(&salt, password),
        }
    }

    /// Verifies a password attempt.
    pub fn verify(&self, password: &str) -> bool {
        sim_kernel::lsm::sim_crypt_verify(&self.hash, password)
    }
}

/// One `/etc/group` record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupEntry {
    /// Group name.
    pub name: String,
    /// Gid.
    pub gid: u32,
    /// Member login names.
    pub members: Vec<String>,
}

impl GroupEntry {
    /// Renders the group format.
    pub fn render(&self) -> String {
        format!("{}:x:{}:{}", self.name, self.gid, self.members.join(","))
    }

    /// Parses a group line.
    pub fn parse(line: &str) -> Option<GroupEntry> {
        let f: Vec<&str> = line.split(':').collect();
        if f.len() != 4 {
            return None;
        }
        Some(GroupEntry {
            name: f[0].to_string(),
            gid: f[2].parse().ok()?,
            members: f[3]
                .split(',')
                .filter(|m| !m.is_empty())
                .map(String::from)
                .collect(),
        })
    }
}

/// One `/etc/gshadow` record (group password).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GshadowEntry {
    /// Group name.
    pub name: String,
    /// Group password hash, or `!` for none.
    pub hash: String,
}

impl GshadowEntry {
    /// Renders the gshadow format.
    pub fn render(&self) -> String {
        format!("{}:{}::", self.name, self.hash)
    }

    /// Parses a gshadow line.
    pub fn parse(line: &str) -> Option<GshadowEntry> {
        let f: Vec<&str> = line.split(':').collect();
        if f.len() < 2 {
            return None;
        }
        Some(GshadowEntry {
            name: f[0].to_string(),
            hash: f[1].to_string(),
        })
    }

    /// Whether the group is password-protected.
    pub fn password_protected(&self) -> bool {
        self.hash != "!" && !self.hash.is_empty()
    }

    /// Verifies a group password attempt.
    pub fn verify(&self, password: &str) -> bool {
        sim_kernel::lsm::sim_crypt_verify(&self.hash, password)
    }
}

/// Parses a whole database file into entries, skipping malformed lines.
pub fn parse_db<T>(text: &str, parse: impl Fn(&str) -> Option<T>) -> Vec<T> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .filter_map(parse)
        .collect()
}

/// Renders entries back to a database file.
pub fn render_db<T>(entries: &[T], render: impl Fn(&T) -> String) -> String {
    entries.iter().map(|e| format!("{}\n", render(e))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passwd_roundtrip() {
        let line = "alice:x:1000:1000:Alice A.:/home/alice:/bin/sh";
        let e = PasswdEntry::parse(line).unwrap();
        assert_eq!(e.name, "alice");
        assert_eq!(e.uid, 1000);
        assert_eq!(e.render(), line);
        assert!(PasswdEntry::parse("broken:line").is_none());
    }

    #[test]
    fn shadow_verify() {
        let e = ShadowEntry::with_password("alice", "hunter2");
        assert!(e.verify("hunter2"));
        assert!(!e.verify("wrong"));
        let parsed = ShadowEntry::parse(&e.render()).unwrap();
        assert_eq!(parsed.hash, e.hash);
        assert!(parsed.verify("hunter2"));
    }

    #[test]
    fn group_roundtrip() {
        let line = "cdrom:x:24:alice,bob";
        let g = GroupEntry::parse(line).unwrap();
        assert_eq!(g.gid, 24);
        assert_eq!(g.members, vec!["alice", "bob"]);
        assert_eq!(g.render(), line);
        let empty = GroupEntry::parse("staff:x:101:").unwrap();
        assert!(empty.members.is_empty());
    }

    #[test]
    fn gshadow_protection_flag() {
        let locked = GshadowEntry::parse("cdrom:!::").unwrap();
        assert!(!locked.password_protected());
        let e = GshadowEntry {
            name: "staff".into(),
            hash: sim_crypt("st", "staffpw"),
        };
        assert!(e.password_protected());
        assert!(e.verify("staffpw"));
        assert!(!e.verify("nope"));
    }

    #[test]
    fn db_parse_skips_comments_and_garbage() {
        let text = "# comment\nalice:x:1000:1000:A:/h:/bin/sh\nbroken\n";
        let entries = parse_db(text, PasswdEntry::parse);
        assert_eq!(entries.len(), 1);
        let back = render_db(&entries, PasswdEntry::render);
        assert_eq!(back, "alice:x:1000:1000:A:/h:/bin/sh\n");
    }
}
