//! Reusable closed-loop macro workload drivers (the paper's §6 setup).
//!
//! The Table 5 macro benchmarks drive whole services, not single
//! syscalls: ApacheBench hammers the web server, Postal hammers the
//! MTA. This module packages those loops as reusable drivers so the
//! micro-bench crate, the fleet macro-benchmark engine, and tests all
//! exercise the same code paths:
//!
//! - [`web_request`] — one HTTP round trip; the serving side stats,
//!   opens, reads, and closes the docroot file per request.
//! - [`mail_delivery`] — one SMTP round trip delivered with the
//!   atomic-replace pattern: stage the new spool image to a tmp file,
//!   then `rename` it over the spool (the crash-safe hot path the VFS
//!   rename-cycle fix protects).
//!
//! Every driver returns `KResult` and is total under fault injection:
//! a worker loop may count failures but never panics.

use crate::bins::mail;
use crate::system::{System, SystemMode};
use sim_kernel::cred::{Gid, Uid};
use sim_kernel::error::{Errno, KResult};
use sim_kernel::net::{Domain, Ipv4, SockType};
use sim_kernel::task::Pid;
use sim_kernel::vfs::Mode;

/// A started network service: the daemon task plus its listening socket.
#[derive(Clone, Copy, Debug)]
pub struct Service {
    /// The daemon task.
    pub pid: Pid,
    /// The listening fd announced at startup.
    pub listen_fd: i32,
    /// The TCP port clients connect to.
    pub port: u16,
}

/// Spawns a mode-appropriate session for a service user: a root login on
/// the legacy image (daemons start privileged and drop), the service
/// user's own session under Protego.
fn service_launch_session(sys: &mut System, uid: Uid, gid: Gid) -> KResult<Pid> {
    match sys.mode {
        SystemMode::Legacy => sys.login("root", "rootpw"),
        SystemMode::Protego => Ok(sys.service_session(uid, gid, "/bin/sh")),
    }
}

fn start_service(
    sys: &mut System,
    binary: &str,
    uid: Uid,
    gid: Gid,
    port: u16,
) -> KResult<Service> {
    let session = service_launch_session(sys, uid, gid)?;
    let (pid, startup) = sys.spawn_service(session, binary, &["--daemon"])?;
    let listen_fd = mail::parse_listen_fd(&startup).ok_or(Errno::EIO)?;
    Ok(Service {
        pid,
        listen_fd,
        port,
    })
}

/// Starts the image's MTA (`exim4` on port 25).
pub fn start_mail_service(sys: &mut System) -> KResult<Service> {
    start_service(sys, "/usr/sbin/exim4", Uid(mail::MAIL_UID), Gid(8), 25)
}

/// Starts the image's web server (`httpd` on port 80).
pub fn start_web_service(sys: &mut System) -> KResult<Service> {
    start_service(sys, "/usr/sbin/httpd", Uid(mail::WWW_UID), Gid(33), 80)
}

/// The web port shared-fleet worker `w` serves on. Ports are disjoint
/// per worker so concurrent workers on one kernel never steal each
/// other's connections out of a shared listen backlog; they sit above
/// 1024 so the Protego bind policy treats them as unrestricted.
pub fn shared_web_port(worker: usize) -> u16 {
    8080 + worker as u16
}

/// The SMTP port shared-fleet worker `w` serves on.
pub fn shared_mail_port(worker: usize) -> u16 {
    2525 + worker as u16
}

/// The spool name shared-fleet worker `w` delivers to: per-worker
/// recipients keep the atomic-replace `rename` commits of concurrent
/// workers on disjoint spool files.
pub fn worker_rcpt(worker: usize) -> String {
    format!("worker{}", worker)
}

/// Starts one worker's service instance on a *shared* kernel: instead of
/// exec-ing the daemon binary (which hard-binds the privileged port),
/// the service session binds the worker's own high port directly. Legacy
/// images keep the paper's privilege shape — the daemon session starts
/// as root, binds, and drops euid while retaining saved uid 0 (so
/// delivery still pays the seteuid round trip); Protego sessions run as
/// the service user throughout.
fn start_shared_service(
    sys: &mut System,
    binary: &str,
    uid: Uid,
    gid: Gid,
    port: u16,
) -> KResult<Service> {
    let pid = match sys.mode {
        SystemMode::Legacy => sys.login("root", "rootpw")?,
        SystemMode::Protego => sys.service_session(uid, gid, binary),
    };
    let fd = sys.process(pid).socket(Domain::Inet, SockType::Stream, 0)?;
    sys.process(pid).bind(fd, Ipv4::ANY, port)?;
    sys.process(pid).listen(fd)?;
    if sys.mode == SystemMode::Legacy {
        // The classic daemon etiquette: drop the effective uid after the
        // bind, keeping saved uid 0 for per-delivery raises (§4.4).
        sys.process(pid).seteuid(uid)?;
    }
    Ok(Service {
        pid,
        listen_fd: fd,
        port,
    })
}

/// Starts shared-fleet worker `w`'s web server on its own port.
pub fn start_shared_web_service(sys: &mut System, worker: usize) -> KResult<Service> {
    start_shared_service(
        sys,
        "/usr/sbin/httpd",
        Uid(mail::WWW_UID),
        Gid(33),
        shared_web_port(worker),
    )
}

/// Starts shared-fleet worker `w`'s MTA on its own port.
pub fn start_shared_mail_service(sys: &mut System, worker: usize) -> KResult<Service> {
    start_shared_service(
        sys,
        "/usr/sbin/exim4",
        Uid(mail::MAIL_UID),
        Gid(8),
        shared_mail_port(worker),
    )
}

/// Logs in the workload's client user.
pub fn client_session(sys: &mut System) -> KResult<Pid> {
    sys.login("alice", "alicepw")
}

/// One ApacheBench-style request: connect, GET, serve (stat + open +
/// read + close on the server), read the response, verify `200 OK`.
pub fn web_request(sys: &mut System, client: Pid, srv: Service) -> KResult<()> {
    let cli = sys
        .process(client)
        .socket(Domain::Inet, SockType::Stream, 0)?;
    let run = (|| {
        sys.process(client).connect(cli, Ipv4::LOOPBACK, srv.port)?;
        sys.process(client).send(cli, b"GET / HTTP/1.0\r\n\r\n")?;
        mail::httpd_serve_one(sys, srv.pid, srv.listen_fd)?;
        let resp = sys.process(client).recv(cli, 65536)?;
        let text = String::from_utf8_lossy(&resp);
        if !text.starts_with("HTTP/1.0 200 OK") || !text.contains("</html>") {
            return Err(Errno::EIO);
        }
        Ok(())
    })();
    let _ = sys.process(client).close(cli);
    run
}

/// One Postal-style delivery: SMTP round trip whose server side commits
/// the message with write-to-tmp + atomic-replace `rename` over the
/// spool, then acknowledges `250 OK`.
pub fn mail_delivery(
    sys: &mut System,
    client: Pid,
    srv: Service,
    rcpt: &str,
    body: &str,
) -> KResult<()> {
    let cli = sys
        .process(client)
        .socket(Domain::Inet, SockType::Stream, 0)?;
    let run = (|| {
        sys.process(client).connect(cli, Ipv4::LOOPBACK, srv.port)?;
        let msg = format!("MAIL TO:<{}>\n{}", rcpt, body);
        sys.process(client).send(cli, msg.as_bytes())?;
        serve_one_atomic(sys, srv.pid, srv.listen_fd)?;
        let reply = sys.process(client).recv(cli, 1024)?;
        if !String::from_utf8_lossy(&reply).starts_with("250") {
            return Err(Errno::EIO);
        }
        Ok(())
    })();
    let _ = sys.process(client).close(cli);
    run
}

/// Server half of [`mail_delivery`]: accept, parse, deliver atomically,
/// acknowledge.
fn serve_one_atomic(sys: &mut System, server: Pid, listen_fd: i32) -> KResult<()> {
    let conn = sys.process(server).accept(listen_fd)?;
    let run = (|| {
        let req = sys.process(server).recv(conn, 65536)?;
        let text = String::from_utf8_lossy(&req).to_string();
        let rcpt = text
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("MAIL TO:<"))
            .and_then(|l| l.strip_suffix('>'))
            .ok_or(Errno::EINVAL)?
            .to_string();
        let body: String = text.lines().skip(1).collect::<Vec<_>>().join("\n");
        match deliver_atomic(sys, server, &rcpt, &body) {
            Ok(()) => {
                sys.process(server).send(conn, b"250 OK\r\n")?;
                Ok(())
            }
            Err(e) => {
                let _ = sys.process(server).send(conn, b"451 delivery failed\r\n");
                Err(e)
            }
        }
    })();
    let _ = sys.process(server).close(conn);
    run
}

/// Atomic-replace spool commit: read the current spool, stage the
/// appended image to `/var/mail/.<rcpt>.tmp`, `rename` it over the
/// spool. The legacy MTA raises its saved root euid around the commit
/// (the §4.4 pattern Protego obviates); the Protego MTA runs it with
/// nothing but the `mail` group.
pub fn deliver_atomic(sys: &mut System, server: Pid, rcpt: &str, body: &str) -> KResult<()> {
    sys.coverage.hit("/usr/sbin/exim4", "deliver");
    let legacy_raise = sys.mode == SystemMode::Legacy
        && sys
            .kernel
            .task(server)
            .map(|t| t.cred.suid.is_root() && !t.cred.euid.is_root())
            .unwrap_or(false);
    if legacy_raise {
        sys.process(server).seteuid(Uid::ROOT)?;
    }
    let spool = format!("/var/mail/{}", rcpt);
    let tmp = format!("/var/mail/.{}.tmp", rcpt);
    let result = (|| {
        let mut image = match sys.process(server).read_file(&spool) {
            Ok(data) => data,
            Err(Errno::ENOENT) => Vec::new(),
            Err(e) => return Err(e),
        };
        image.extend_from_slice(format!("From MTA: to {}\n{}\n\n", rcpt, body).as_bytes());
        sys.process(server).write_file(&tmp, &image, Mode(0o660))?;
        sys.process(server).rename(&tmp, &spool)
    })();
    if result.is_err() {
        sys.coverage.hit("/usr/sbin/exim4", "deliver_fail");
        // Never leave a stale staging file behind a failed commit.
        let _ = sys.process(server).unlink(&tmp);
    }
    if legacy_raise {
        let _ = sys.process(server).seteuid(Uid(mail::MAIL_UID));
    }
    result
}

/// The mail reader's half of the closed loop: truncates the spools the
/// way an MDA/user drains a real mailbox. Without a consumer the spool
/// grows without bound and [`deliver_atomic`]'s read-append-rename
/// commit gets slower with every message, making throughput depend on
/// how long the benchmark has been running. Uses the same legacy euid
/// raise as delivery so both modes pay symmetric costs.
pub fn drain_spools(sys: &mut System, srv: Service) {
    let legacy_raise = sys.mode == SystemMode::Legacy
        && sys
            .kernel
            .task(srv.pid)
            .map(|t| t.cred.suid.is_root() && !t.cred.euid.is_root())
            .unwrap_or(false);
    if legacy_raise {
        let _ = sys.process(srv.pid).seteuid(Uid::ROOT);
    }
    for rcpt in ["alice", "bob"] {
        let _ = sys.process(srv.pid).unlink(&format!("/var/mail/{}", rcpt));
    }
    if legacy_raise {
        let _ = sys.process(srv.pid).seteuid(Uid(mail::MAIL_UID));
    }
}

/// Drains one named spool — the shared fleet's per-worker consumer,
/// paying the same legacy euid raise as [`drain_spools`].
pub fn drain_spool(sys: &mut System, srv: Service, rcpt: &str) {
    let legacy_raise = sys.mode == SystemMode::Legacy
        && sys
            .kernel
            .task(srv.pid)
            .map(|t| t.cred.suid.is_root() && !t.cred.euid.is_root())
            .unwrap_or(false);
    if legacy_raise {
        let _ = sys.process(srv.pid).seteuid(Uid::ROOT);
    }
    let _ = sys.process(srv.pid).unlink(&format!("/var/mail/{}", rcpt));
    if legacy_raise {
        let _ = sys.process(srv.pid).seteuid(Uid(mail::MAIL_UID));
    }
}

/// Flushes connections stranded in `srv`'s listen backlog by a failed
/// request (e.g. a fault injected into the server's `accept`): without
/// this, every later request would be served the *previous* client's
/// connection and the loop would wedge permanently one-off. Returns how
/// many stale connections were reaped.
pub fn drain_backlog(sys: &mut System, srv: Service) -> usize {
    let mut reaped = 0;
    // Bounded: the backlog can only hold connections from failed ops,
    // and the drain itself may be fault-injected mid-way — the next
    // failed op simply drains again.
    for _ in 0..64 {
        match sys.process(srv.pid).accept(srv.listen_fd) {
            Ok(conn) => {
                let _ = sys.process(srv.pid).close(conn);
                reaped += 1;
            }
            Err(_) => break,
        }
    }
    reaped
}

/// Escalation artifacts only an exploit (or corrupted kernel) produces;
/// the macro workloads must never create any. Returns human-readable
/// descriptions of everything found, empty when clean — the fleet soak
/// asserts emptiness per worker.
pub fn privileged_artifacts(sys: &mut System) -> Vec<String> {
    let root = sys.init_pid();
    let mut found = Vec::new();
    match sys.kernel.read_to_string(root, "/etc/shadow") {
        Ok(shadow) => {
            if shadow.contains("haxor") {
                found.push("rogue account in /etc/shadow".to_string());
            }
        }
        Err(e) => found.push(format!("/etc/shadow unreadable by root: {}", e)),
    }
    if let Ok(st) = sys.kernel.sys_stat(root, "/tmp/rootshell") {
        if st.mode.0 & 0o4000 != 0 {
            found.push("setuid-root /tmp/rootshell planted".to_string());
        }
    }
    if sys.kernel.sys_stat(root, "/lib/modules/evil.ko").is_ok() {
        found.push("rootkit module /lib/modules/evil.ko appeared".to_string());
    }
    found
}

/// The VFS namespace property invariants from the proptests, as a
/// non-panicking detector: a directory walk from the root must terminate
/// within the live-inode budget (no namespace cycles), and every
/// reachable inode must resolve back to itself at its own `path_of`
/// (live inodes stay root-reachable). Mount-covered nodes are exempt
/// from the ino equality — resolution legitimately lands in the mounted
/// filesystem — but must still resolve. Returns human-readable
/// descriptions of every violation, empty when the namespace is sound;
/// the stress tests assert emptiness and the fuzz oracle treats any
/// entry as a security failure.
pub fn vfs_namespace_violations(sys: &System) -> Vec<String> {
    let vfs = &sys.kernel.vfs;
    let root = vfs.root();
    let budget = vfs.inode_count() + 1;
    let mut found = Vec::new();
    let mut queue = vec![root];
    let mut seen = std::collections::BTreeSet::new();
    seen.insert(root);
    let mut visited = 0usize;
    while let Some(dir) = queue.pop() {
        visited += 1;
        if visited > budget {
            found.push(format!(
                "directory walk visited {} nodes with only {} live inodes: namespace cycle",
                visited,
                budget - 1
            ));
            return found;
        }
        // A mount covering this directory shadows its underlying
        // children (mounting over a non-empty directory legitimately
        // hides its contents until umount) — the shadowed subtree is
        // unreachable by design, not a namespace violation.
        if vfs.mount_covering(dir).is_some() {
            continue;
        }
        let names = match vfs.dir_names(dir) {
            Ok(n) => n,
            Err(_) => continue,
        };
        for name in names {
            let child = match vfs.dir_lookup(dir, &name) {
                Ok(Some(c)) => c,
                _ => continue,
            };
            let path = vfs.path_of(child);
            let resolved = match vfs.resolve_nofollow(root, &path) {
                Ok(r) => r,
                Err(e) => {
                    found.push(format!(
                        "live inode {:?} unresolvable at {:?}: {}",
                        child, path, e
                    ));
                    continue;
                }
            };
            let mounted =
                vfs.mount_covering(child).is_some() || vfs.mount_rooted_at(child).is_some();
            if !mounted && resolved.ino != child {
                found.push(format!(
                    "path {:?} resolves to a different inode than the tree walk",
                    path
                ));
            }
            let is_dir = vfs.inode(child).data.is_dir();
            if is_dir && seen.insert(child) {
                queue.push(child);
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::boot;

    #[test]
    fn web_request_serves_docroot_on_both_modes() {
        for mode in [SystemMode::Legacy, SystemMode::Protego] {
            let mut sys = boot(mode);
            let srv = start_web_service(&mut sys).expect("web service");
            let client = client_session(&mut sys).expect("client login");
            for _ in 0..5 {
                web_request(&mut sys, client, srv).expect("request");
            }
        }
    }

    #[test]
    fn mail_delivery_renames_atomically_on_both_modes() {
        for mode in [SystemMode::Legacy, SystemMode::Protego] {
            let mut sys = boot(mode);
            let srv = start_mail_service(&mut sys).expect("mail service");
            let client = client_session(&mut sys).expect("client login");
            for i in 0..4 {
                mail_delivery(&mut sys, client, srv, "bob", &format!("msg {}", i))
                    .expect("delivery");
            }
            let init = sys.init_pid();
            let spool = sys
                .kernel
                .read_to_string(init, "/var/mail/bob")
                .expect("spool");
            for i in 0..4 {
                assert!(
                    spool.contains(&format!("msg {}", i)),
                    "{:?}: {}",
                    mode,
                    spool
                );
            }
            // The staging file never survives a completed delivery.
            assert!(sys.kernel.sys_stat(init, "/var/mail/.bob.tmp").is_err());
            assert!(privileged_artifacts(&mut sys).is_empty());
        }
    }
}
