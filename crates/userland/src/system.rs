//! The userland runtime: a booted system image, a registry of program
//! images, and the process model that runs them against the simulated
//! kernel.
//!
//! Binaries are Rust functions invoked when a task `exec`s their path —
//! the kernel performs all credential mathematics and policy checks; the
//! function is the program body. The runtime also carries the
//! vulnerability-injection machinery used by the `exploits` crate
//! (Table 6): a payload can be armed to run *at a named point inside a
//! binary, with the binary's live credentials*, which is precisely what a
//! memory-corruption exploit achieves.

use crate::coverage::Coverage;
use crate::process::Process;
use sim_kernel::cred::{Credentials, Gid, Uid};
use sim_kernel::error::{Errno, KResult};
use sim_kernel::kernel::{Kernel, SharedKernel};
use sim_kernel::syscall::OpenFlags;
use sim_kernel::task::Pid;
use sim_kernel::vfs::Mode;

/// Which of the paper's two systems this image is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SystemMode {
    /// Stock Linux 3.6 + AppArmor, setuid-to-root binaries.
    Legacy,
    /// Protego: no setuid bits, policies in the kernel.
    Protego,
}

/// A program image.
pub type BinFn = fn(&mut Proc<'_>) -> i32;

/// Registry entry: the program body plus its declared coverage points.
#[derive(Clone)]
pub struct BinEntry {
    /// The program body.
    pub func: BinFn,
    /// All coverage/vulnerability points the binary contains.
    pub points: &'static [&'static str],
}

/// An armed exploit: attacker-controlled code that runs when `binary`
/// reaches `point`, with the binary's credentials at that moment.
pub struct Exploit {
    /// Target binary path.
    pub binary: String,
    /// Vulnerability point name.
    pub point: &'static str,
    /// The attacker's payload.
    pub payload: fn(&mut Proc<'_>),
}

/// Outcome records appended by exploit payloads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttackEvent {
    /// Which privileged effect was attempted.
    pub action: String,
    /// Whether the kernel permitted it.
    pub succeeded: bool,
    /// Effective uid at the time of the attempt.
    pub euid: u32,
}

/// Result of running a command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunResult {
    /// Exit code (0 = success; errno value on failure by convention).
    pub code: i32,
    /// Captured stdout+stderr.
    pub stdout: String,
}

impl RunResult {
    /// Whether the command exited 0.
    pub fn ok(&self) -> bool {
        self.code == 0
    }
}

/// A booted system: kernel + program registry + instrumentation.
///
/// The kernel is held through a [`SharedKernel`] handle, so a fleet of
/// worker threads can drive **one** kernel concurrently: build the image
/// once, then hand each worker its own [`System::worker_view`].
pub struct System {
    /// The simulated kernel (a cloneable, thread-shareable handle).
    pub kernel: SharedKernel,
    /// Legacy or Protego.
    pub mode: SystemMode,
    /// Coverage instrumentation (Table 7).
    pub coverage: Coverage,
    /// Records produced by exploit payloads.
    pub attack_log: Vec<AttackEvent>,
    /// The trusted monitoring daemon (present on Protego images).
    pub monitord: Option<crate::monitord::MonitorDaemon>,
    registry: std::collections::BTreeMap<String, BinEntry>,
    exploit: Option<Exploit>,
    init: Option<Pid>,
}

impl System {
    /// Wraps a kernel; binaries are registered afterwards.
    pub fn new(kernel: Kernel, mode: SystemMode) -> System {
        System::from_shared(SharedKernel::new(kernel), mode)
    }

    /// Wraps an already-shared kernel handle.
    pub fn from_shared(kernel: SharedKernel, mode: SystemMode) -> System {
        System {
            kernel,
            mode,
            coverage: Coverage::new(),
            attack_log: Vec::new(),
            monitord: None,
            registry: Default::default(),
            exploit: None,
            init: None,
        }
    }

    /// A worker's view onto the *same* kernel: shares the kernel handle,
    /// the program registry, and the init task, but carries its own
    /// coverage/attack instrumentation and no monitoring daemon. Views
    /// are what fleet workers drive concurrently — userland bookkeeping
    /// stays per-worker while every syscall lands in the shared kernel.
    pub fn worker_view(&self) -> System {
        System {
            kernel: self.kernel.clone(),
            mode: self.mode,
            coverage: Coverage::new(),
            attack_log: Vec::new(),
            monitord: None,
            registry: self.registry.clone(),
            exploit: None,
            init: self.init,
        }
    }

    // ------------------------------------------------------------------
    // Typed interceptor registration (the InterceptorSlot surface):
    // helpers that box the standard interceptors onto the dispatch chain
    // and hand back both the slot handle (enable/disable/replace) and the
    // interceptor's shared observer handle where it has one.
    // ------------------------------------------------------------------

    /// Installs a [`FaultInjector`](sim_kernel::syscall::FaultInjector)
    /// built from `config`, returning its chain slot and the shared
    /// stats handle.
    pub fn attach_fault_injector(
        &mut self,
        config: sim_kernel::syscall::FaultConfig,
    ) -> (
        sim_kernel::kernel::InterceptorSlot,
        std::sync::Arc<std::sync::Mutex<sim_kernel::syscall::FaultStats>>,
    ) {
        let injector = sim_kernel::syscall::FaultInjector::new(config);
        let stats = injector.stats();
        let slot = self.kernel.register_interceptor(Box::new(injector));
        (slot, stats)
    }

    /// Installs a [`TraceRecorder`](sim_kernel::trace::TraceRecorder),
    /// returning its chain slot and the shared trace handle.
    pub fn attach_recorder(
        &mut self,
    ) -> (
        sim_kernel::kernel::InterceptorSlot,
        std::sync::Arc<std::sync::Mutex<sim_kernel::trace::Trace>>,
    ) {
        let recorder = sim_kernel::trace::TraceRecorder::new();
        let trace = recorder.trace();
        let slot = self.kernel.register_interceptor(Box::new(recorder));
        (slot, trace)
    }

    /// Installs a [`SyscallMeter`](sim_kernel::syscall::SyscallMeter),
    /// returning its chain slot.
    pub fn attach_meter(&mut self) -> sim_kernel::kernel::InterceptorSlot {
        self.kernel
            .register_interceptor(Box::new(sim_kernel::syscall::SyscallMeter::new()))
    }

    /// Installs a [`SeccompInterceptor`](sim_kernel::seccomp::SeccompInterceptor)
    /// wired to this kernel's [`Seccomp`](sim_kernel::seccomp::Seccomp)
    /// control block, returning its chain slot. Profiles and mode are
    /// managed through `kernel.seccomp` (or `/proc/seccomp/*`); the
    /// interceptor is inert while the mode is `off`.
    pub fn attach_seccomp(&mut self) -> sim_kernel::kernel::InterceptorSlot {
        let ic = sim_kernel::seccomp::SeccompInterceptor::new(self.kernel.seccomp.clone());
        self.kernel.register_interceptor(Box::new(ic))
    }

    /// Runs one monitoring-daemon poll cycle (Protego's policy
    /// synchronization); returns whether any policy was pushed.
    pub fn sync_policies(&mut self) -> KResult<bool> {
        let mut d = match self.monitord.take() {
            Some(d) => d,
            None => return Ok(false),
        };
        let r = d.poll(&self.kernel);
        self.monitord = Some(d);
        r
    }

    /// A [`Process`] syscall context bound to `pid` — the typed-dispatch
    /// route into the kernel.
    pub fn process(&mut self, pid: Pid) -> Process<'_> {
        Process::new(&self.kernel, pid)
    }

    /// The init (pid 1, root) task, creating it on first use.
    pub fn init_pid(&mut self) -> Pid {
        match self.init {
            Some(p) => p,
            None => {
                let p = self.kernel.spawn_init();
                self.init = Some(p);
                p
            }
        }
    }

    /// Registers a program image at an absolute path and declares its
    /// coverage points.
    pub fn register(&mut self, path: &str, entry: BinEntry) {
        self.coverage.declare(path, entry.points);
        self.registry.insert(path.to_string(), entry);
    }

    /// Looks up a registered program.
    pub fn lookup(&self, path: &str) -> Option<&BinEntry> {
        self.registry.get(path)
    }

    /// Arms an exploit; at most one may be armed at a time.
    pub fn arm_exploit(&mut self, exploit: Exploit) {
        self.exploit = Some(exploit);
    }

    /// Disarms any armed exploit.
    pub fn disarm_exploit(&mut self) {
        self.exploit = None;
    }

    /// Creates a login session for a user by verifying the password
    /// against the shadow database (via the login program's logic) and
    /// spawning a shell task. Returns the session pid.
    pub fn login(&mut self, name: &str, password: &str) -> KResult<Pid> {
        let init = self.init_pid();
        let passwd = self.process(init).read_to_string("/etc/passwd")?;
        let entry = crate::db::parse_db(&passwd, crate::db::PasswdEntry::parse)
            .into_iter()
            .find(|e| e.name == name)
            .ok_or(Errno::ENOENT)?;
        let shadow = self.process(init).read_to_string("/etc/shadow")?;
        let sh = crate::db::parse_db(&shadow, crate::db::ShadowEntry::parse)
            .into_iter()
            .find(|e| e.name == name)
            .ok_or(Errno::ENOENT)?;
        if !sh.verify(password) {
            return Err(Errno::EAUTH);
        }
        // Group membership from /etc/group.
        let groups_text = self.process(init).read_to_string("/etc/group")?;
        // Root logins get the full capability set, as stock Linux grants
        // any euid-0 process.
        let mut cred = if entry.uid == 0 {
            Credentials::root()
        } else {
            Credentials::user(Uid(entry.uid), Gid(entry.gid))
        };
        for g in crate::db::parse_db(&groups_text, crate::db::GroupEntry::parse) {
            if g.members.iter().any(|m| m == name) && !cred.groups.contains(&Gid(g.gid)) {
                cred.groups.push(Gid(g.gid));
            }
        }
        let pid = self.kernel.spawn_session(cred, &entry.shell);
        self.kernel.task_mut(pid)?.setenv("HOME", &entry.home);
        self.kernel.task_mut(pid)?.setenv("USER", &entry.name);
        self.kernel.task_mut(pid)?.setenv("LANG", "en_US.UTF-8");
        self.kernel
            .task_mut(pid)?
            .setenv("LD_PRELOAD_GUARD", "session");
        Ok(pid)
    }

    /// Runs `path` as a child of `session`, with terminal input queued for
    /// any password prompts. This is the fork/exec/wait cycle of a shell.
    pub fn run(
        &mut self,
        session: Pid,
        path: &str,
        args: &[&str],
        input: &[&str],
    ) -> KResult<RunResult> {
        let child = self.process(session).fork()?;
        for line in input {
            self.kernel.task_mut(child)?.type_input(line);
        }
        let mut out = String::new();
        let code = self.exec_into(child, path, &args_vec(args), &mut out);
        let _ = self.process(child).exit(code);
        let code = self.process(session).wait(child).unwrap_or(code);
        Ok(RunResult { code, stdout: out })
    }

    /// Starts a long-running service: forks from `session`, execs `path`,
    /// and runs its setup body, but leaves the task alive so its sockets
    /// persist. Returns the service pid and the setup output.
    pub fn spawn_service(
        &mut self,
        session: Pid,
        path: &str,
        args: &[&str],
    ) -> KResult<(Pid, RunResult)> {
        let child = self.process(session).fork()?;
        let mut out = String::new();
        let code = self.exec_into(child, path, &args_vec(args), &mut out);
        Ok((child, RunResult { code, stdout: out }))
    }

    /// Creates a bare service session (a task for a daemon user), without
    /// going through login.
    pub fn service_session(&mut self, uid: Uid, gid: Gid, binary: &str) -> Pid {
        self.kernel
            .spawn_session(Credentials::user(uid, gid), binary)
    }

    /// The exec half: transforms task `pid` into the program at `path` and
    /// runs its body, appending output to `out`.
    pub(crate) fn exec_into(
        &mut self,
        pid: Pid,
        path: &str,
        args: &[String],
        out: &mut String,
    ) -> i32 {
        let abs = match self.process(pid).execve(path) {
            Ok(a) => a,
            Err(e) => {
                out.push_str(&format!("exec {}: {}\n", path, e));
                return e.as_errno_i32();
            }
        };
        let func = match self.registry.get(&abs) {
            Some(e) => e.func,
            None => {
                out.push_str(&format!("exec {}: not a registered program\n", abs));
                return 127;
            }
        };
        let mut proc = Proc {
            sys: self,
            pid,
            args: args.to_vec(),
            out,
        };
        func(&mut proc)
    }
}

fn args_vec(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| s.to_string()).collect()
}

/// The view a running program has of itself: its task, arguments, and
/// output stream, plus the instrumentation entry points.
pub struct Proc<'a> {
    /// The system (kernel + runtime).
    pub sys: &'a mut System,
    /// This process.
    pub pid: Pid,
    /// argv[1..].
    pub args: Vec<String>,
    /// stdout/stderr.
    pub out: &'a mut String,
}

impl<'a> Proc<'a> {
    /// Appends a line to the program's output.
    pub fn println(&mut self, s: &str) {
        self.out.push_str(s);
        self.out.push('\n');
    }

    /// The binary path this task is executing.
    pub fn binary(&self) -> String {
        self.sys
            .kernel
            .task(self.pid)
            .map(|t| t.binary.clone())
            .unwrap_or_default()
    }

    /// Real uid.
    pub fn ruid(&self) -> Uid {
        self.sys
            .kernel
            .task(self.pid)
            .map(|t| t.cred.ruid)
            .unwrap_or(Uid(u32::MAX))
    }

    /// Effective uid.
    pub fn euid(&self) -> Uid {
        self.sys
            .kernel
            .task(self.pid)
            .map(|t| t.cred.euid)
            .unwrap_or(Uid(u32::MAX))
    }

    /// Marks a coverage point.
    pub fn cov(&mut self, point: &'static str) {
        let b = self.binary();
        self.sys.coverage.hit(&b, point);
    }

    /// Marks a coverage point that is also a *vulnerability point*: if an
    /// exploit is armed for (this binary, this point), the attacker's
    /// payload runs here with the program's current credentials.
    pub fn vuln(&mut self, point: &'static str) {
        self.cov(point);
        let b = self.binary();
        let payload = match &self.sys.exploit {
            Some(e) if e.binary == b && e.point == point => Some(e.payload),
            _ => None,
        };
        if let Some(p) = payload {
            p(self);
        }
    }

    /// Records the outcome of a privileged action attempted by an exploit
    /// payload.
    pub fn record_attack(&mut self, action: &str, succeeded: bool) {
        let euid = self.euid().0;
        self.sys.attack_log.push(AttackEvent {
            action: action.to_string(),
            succeeded,
            euid,
        });
    }

    /// Replaces this process image with another program (classic exec):
    /// the callee's exit code becomes this program's.
    pub fn exec(&mut self, path: &str, args: &[&str]) -> i32 {
        let args = args_vec(args);
        self.sys.exec_into(self.pid, path, &args, self.out)
    }

    // -- thin syscall wrappers -----------------------------------------

    /// The typed syscall context for this process — every call made
    /// through it goes via `Kernel::dispatch` and is therefore visible to
    /// interceptors (fault injection, tracing, metering).
    pub fn os(&mut self) -> Process<'_> {
        self.sys.process(self.pid)
    }

    /// Reads a whole file as UTF-8.
    pub fn read_to_string(&mut self, path: &str) -> KResult<String> {
        self.os().read_to_string(path)
    }

    /// Creates/truncates a file.
    pub fn write_file(&mut self, path: &str, data: &[u8], mode: Mode) -> KResult<()> {
        self.os().write_file(path, data, mode)
    }

    /// Appends to a file.
    pub fn append_file(&mut self, path: &str, data: &[u8]) -> KResult<()> {
        self.os().append_file(path, data)
    }

    /// Opens a file.
    pub fn open(&mut self, path: &str, flags: OpenFlags) -> KResult<i32> {
        self.os().open(path, flags)
    }

    /// Reads the next queued terminal line (a password prompt).
    pub fn read_tty(&mut self) -> Option<String> {
        self.sys
            .kernel
            .task_mut(self.pid)
            .ok()
            .and_then(|mut t| t.terminal_input.pop_front())
    }

    /// Environment lookup.
    pub fn getenv(&self, key: &str) -> Option<String> {
        self.sys
            .kernel
            .task(self.pid)
            .ok()
            .and_then(|t| t.getenv(key).map(String::from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::net::SimNet;

    fn echo_main(p: &mut Proc<'_>) -> i32 {
        p.cov("start");
        let line = p.args.join(" ");
        p.println(&line);
        0
    }

    fn id_main(p: &mut Proc<'_>) -> i32 {
        let (r, e) = (p.ruid().0, p.euid().0);
        p.println(&format!("uid={} euid={}", r, e));
        0
    }

    fn chain_main(p: &mut Proc<'_>) -> i32 {
        p.exec("/bin/id", &[])
    }

    fn minimal_system() -> System {
        let k = Kernel::new(SimNet::new());
        k.install_standard_devices().unwrap();
        let mut sys = System::new(k, SystemMode::Legacy);
        let init = sys.init_pid();
        for (path, f) in [
            ("/bin/echo", echo_main as BinFn),
            ("/bin/id", id_main as BinFn),
            ("/bin/chain", chain_main as BinFn),
        ] {
            sys.kernel
                .vfs
                .install_file(path, b"#!sim", Mode(0o755), Uid::ROOT, Gid::ROOT)
                .unwrap();
            sys.register(
                path,
                BinEntry {
                    func: f,
                    points: &["start"],
                },
            );
        }
        // Minimal credential databases for login().
        sys.kernel
            .vfs
            .install_file(
                "/etc/passwd",
                b"root:x:0:0:root:/root:/bin/sh\nalice:x:1000:1000:A:/home/alice:/bin/sh\n",
                Mode(0o644),
                Uid::ROOT,
                Gid::ROOT,
            )
            .unwrap();
        let shadow = format!(
            "{}\n{}\n",
            crate::db::ShadowEntry::with_password("root", "rootpw").render(),
            crate::db::ShadowEntry::with_password("alice", "alicepw").render()
        );
        sys.kernel
            .vfs
            .install_file(
                "/etc/shadow",
                shadow.as_bytes(),
                Mode(0o600),
                Uid::ROOT,
                Gid::ROOT,
            )
            .unwrap();
        sys.kernel
            .vfs
            .install_file(
                "/etc/group",
                b"cdrom:x:24:alice\n",
                Mode(0o644),
                Uid::ROOT,
                Gid::ROOT,
            )
            .unwrap();
        sys.kernel
            .vfs
            .install_file("/bin/sh", b"#!sim", Mode(0o755), Uid::ROOT, Gid::ROOT)
            .unwrap();
        let _ = init;
        sys
    }

    #[test]
    fn login_and_run() {
        let mut sys = minimal_system();
        let alice = sys.login("alice", "alicepw").unwrap();
        let r = sys
            .run(alice, "/bin/echo", &["hello", "world"], &[])
            .unwrap();
        assert!(r.ok());
        assert_eq!(r.stdout, "hello world\n");
    }

    #[test]
    fn login_wrong_password() {
        let mut sys = minimal_system();
        assert_eq!(sys.login("alice", "wrong").unwrap_err(), Errno::EAUTH);
        assert_eq!(sys.login("mallory", "x").unwrap_err(), Errno::ENOENT);
    }

    #[test]
    fn login_collects_groups() {
        let mut sys = minimal_system();
        let alice = sys.login("alice", "alicepw").unwrap();
        assert!(sys.kernel.task(alice).unwrap().cred.in_group(Gid(24)));
    }

    #[test]
    fn run_reports_uids() {
        let mut sys = minimal_system();
        let alice = sys.login("alice", "alicepw").unwrap();
        let r = sys.run(alice, "/bin/id", &[], &[]).unwrap();
        assert_eq!(r.stdout, "uid=1000 euid=1000\n");
    }

    #[test]
    fn exec_chains_within_process() {
        let mut sys = minimal_system();
        let alice = sys.login("alice", "alicepw").unwrap();
        let r = sys.run(alice, "/bin/chain", &[], &[]).unwrap();
        assert!(r.ok());
        assert!(r.stdout.contains("uid=1000"));
    }

    #[test]
    fn unregistered_binary_is_127() {
        let mut sys = minimal_system();
        let alice = sys.login("alice", "alicepw").unwrap();
        sys.kernel
            .vfs
            .install_file("/bin/ghost", b"#!sim", Mode(0o755), Uid::ROOT, Gid::ROOT)
            .unwrap();
        let r = sys.run(alice, "/bin/ghost", &[], &[]).unwrap();
        assert_eq!(r.code, 127);
    }

    #[test]
    fn missing_binary_reports_errno() {
        let mut sys = minimal_system();
        let alice = sys.login("alice", "alicepw").unwrap();
        let r = sys.run(alice, "/bin/nope", &[], &[]).unwrap();
        assert_eq!(r.code, Errno::ENOENT.as_errno_i32());
        assert!(r.stdout.contains("ENOENT"));
    }

    #[test]
    fn exploit_fires_at_point_with_live_credentials() {
        fn vulnerable_main(p: &mut Proc<'_>) -> i32 {
            p.vuln("parse");
            0
        }
        fn payload(p: &mut Proc<'_>) {
            let ok = p.write_file("/etc/owned", b"!", Mode(0o644)).is_ok();
            p.record_attack("write /etc/owned", ok);
        }
        let mut sys = minimal_system();
        sys.kernel
            .vfs
            .install_file("/bin/vuln", b"#!sim", Mode(0o755), Uid::ROOT, Gid::ROOT)
            .unwrap();
        sys.register(
            "/bin/vuln",
            BinEntry {
                func: vulnerable_main,
                points: &["parse"],
            },
        );
        sys.arm_exploit(Exploit {
            binary: "/bin/vuln".into(),
            point: "parse",
            payload,
        });
        let alice = sys.login("alice", "alicepw").unwrap();
        sys.run(alice, "/bin/vuln", &[], &[]).unwrap();
        assert_eq!(sys.attack_log.len(), 1);
        // Unprivileged binary: the payload could not write /etc.
        assert!(!sys.attack_log[0].succeeded);
        assert_eq!(sys.attack_log[0].euid, 1000);
    }

    #[test]
    fn coverage_recorded_through_runs() {
        let mut sys = minimal_system();
        let alice = sys.login("alice", "alicepw").unwrap();
        sys.run(alice, "/bin/echo", &["x"], &[]).unwrap();
        assert_eq!(sys.coverage.count("/bin/echo", "start"), 1);
    }
}
