//! The trusted authentication utility (§4.3).
//!
//! In the paper this is a 1,200-line binary refactored from `login` and
//! `newgrp`, launched *by the kernel* when a policy decision requires a
//! fresh proof of identity: it takes over the terminal, prompts for the
//! password of the required principal, and reports the result, which the
//! kernel records in the task's `task_struct`.
//!
//! Here it implements [`sim_kernel::lsm::AuthProvider`]; the kernel hands
//! it the task's queued terminal input and a read-only filesystem view.

use crate::db::{parse_db, GroupEntry, GshadowEntry, PasswdEntry, ShadowEntry};
use sim_kernel::cred::{Gid, Uid};
use sim_kernel::lsm::{AuthProvider, AuthScope};
use sim_kernel::vfs::Vfs;
use std::collections::VecDeque;

/// The trusted authentication agent.
#[derive(Debug, Default)]
pub struct AuthDaemon {
    /// Number of authentication attempts served (for auditing/benches).
    pub prompts: u64,
    /// Number of failures.
    pub failures: u64,
}

impl AuthDaemon {
    /// Creates the agent.
    pub fn new() -> AuthDaemon {
        AuthDaemon::default()
    }

    fn read(vfs: &Vfs, path: &str) -> Option<String> {
        let r = vfs.resolve(vfs.root(), path).ok()?;
        let bytes = vfs.read_all(r.ino).ok()?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn user_name(vfs: &Vfs, uid: Uid) -> Option<String> {
        let passwd = Self::read(vfs, "/etc/passwd")?;
        parse_db(&passwd, PasswdEntry::parse)
            .into_iter()
            .find(|e| e.uid == uid.0)
            .map(|e| e.name)
    }

    fn group_name(vfs: &Vfs, gid: Gid) -> Option<String> {
        let group = Self::read(vfs, "/etc/group")?;
        parse_db(&group, GroupEntry::parse)
            .into_iter()
            .find(|e| e.gid == gid.0)
            .map(|e| e.name)
    }

    fn user_hash(vfs: &Vfs, name: &str) -> Option<String> {
        // Protego's fragmented database first, then the legacy file the
        // monitoring daemon keeps synchronized.
        if let Some(frag) = Self::read(vfs, &format!("/etc/shadows/{}", name)) {
            if let Some(e) = parse_db(&frag, ShadowEntry::parse).into_iter().next() {
                return Some(e.hash);
            }
        }
        let shadow = Self::read(vfs, "/etc/shadow")?;
        parse_db(&shadow, ShadowEntry::parse)
            .into_iter()
            .find(|e| e.name == name)
            .map(|e| e.hash)
    }

    fn group_hash(vfs: &Vfs, name: &str) -> Option<String> {
        if let Some(frag) = Self::read(vfs, &format!("/etc/gshadows/{}", name)) {
            if let Some(e) = parse_db(&frag, GshadowEntry::parse).into_iter().next() {
                return Some(e.hash);
            }
        }
        let gshadow = Self::read(vfs, "/etc/gshadow")?;
        parse_db(&gshadow, GshadowEntry::parse)
            .into_iter()
            .find(|e| e.name == name)
            .map(|e| e.hash)
    }
}

impl AuthProvider for AuthDaemon {
    fn authenticate(
        &mut self,
        scope: AuthScope,
        terminal_input: &mut VecDeque<String>,
        vfs: &Vfs,
    ) -> bool {
        self.prompts += 1;
        let hash = match scope {
            AuthScope::User(uid) => {
                Self::user_name(vfs, uid).and_then(|n| Self::user_hash(vfs, &n))
            }
            AuthScope::Group(gid) => {
                Self::group_name(vfs, gid).and_then(|n| Self::group_hash(vfs, &n))
            }
        };
        let hash = match hash {
            Some(h) if h != "!" && !h.is_empty() => h,
            _ => {
                self.failures += 1;
                return false;
            }
        };
        let attempt = match terminal_input.pop_front() {
            Some(a) => a,
            None => {
                self.failures += 1;
                return false;
            }
        };
        let ok = sim_kernel::lsm::sim_crypt_verify(&hash, &attempt);
        if !ok {
            self.failures += 1;
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::cred::{Gid as KGid, Uid as KUid};
    use sim_kernel::vfs::Mode;

    fn vfs_with_dbs() -> Vfs {
        let v = Vfs::new();
        v.install_file(
            "/etc/passwd",
            b"root:x:0:0:r:/root:/bin/sh\nalice:x:1000:1000:A:/h:/bin/sh\n",
            Mode(0o644),
            KUid::ROOT,
            KGid::ROOT,
        )
        .unwrap();
        let shadow = format!(
            "{}\n{}\n",
            ShadowEntry::with_password("root", "rootpw").render(),
            ShadowEntry::with_password("alice", "alicepw").render()
        );
        v.install_file(
            "/etc/shadow",
            shadow.as_bytes(),
            Mode(0o600),
            KUid::ROOT,
            KGid::ROOT,
        )
        .unwrap();
        v.install_file(
            "/etc/group",
            b"staff:x:101:\n",
            Mode(0o644),
            KUid::ROOT,
            KGid::ROOT,
        )
        .unwrap();
        let gsh = GshadowEntry {
            name: "staff".into(),
            hash: sim_kernel::lsm::sim_crypt("st", "staffpw"),
        };
        v.install_file(
            "/etc/gshadow",
            format!("{}\n", gsh.render()).as_bytes(),
            Mode(0o600),
            KUid::ROOT,
            KGid::ROOT,
        )
        .unwrap();
        v
    }

    fn input(lines: &[&str]) -> VecDeque<String> {
        lines.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn user_auth_success_and_failure() {
        let v = vfs_with_dbs();
        let mut a = AuthDaemon::new();
        assert!(a.authenticate(AuthScope::User(KUid(1000)), &mut input(&["alicepw"]), &v));
        assert!(!a.authenticate(AuthScope::User(KUid(1000)), &mut input(&["wrong"]), &v));
        assert!(!a.authenticate(AuthScope::User(KUid(1000)), &mut input(&[]), &v));
        assert_eq!(a.prompts, 3);
        assert_eq!(a.failures, 2);
    }

    #[test]
    fn unknown_principal_fails() {
        let v = vfs_with_dbs();
        let mut a = AuthDaemon::new();
        assert!(!a.authenticate(AuthScope::User(KUid(4242)), &mut input(&["x"]), &v));
    }

    #[test]
    fn group_auth() {
        let v = vfs_with_dbs();
        let mut a = AuthDaemon::new();
        assert!(a.authenticate(AuthScope::Group(KGid(101)), &mut input(&["staffpw"]), &v));
        assert!(!a.authenticate(AuthScope::Group(KGid(101)), &mut input(&["nope"]), &v));
    }

    #[test]
    fn fragments_take_precedence() {
        let v = vfs_with_dbs();
        // A newer password in the Protego fragment.
        let frag = ShadowEntry::with_password("alice", "newpw");
        v.install_file(
            "/etc/shadows/alice",
            format!("{}\n", frag.render()).as_bytes(),
            Mode(0o600),
            KUid(1000),
            KGid(1000),
        )
        .unwrap();
        let mut a = AuthDaemon::new();
        assert!(a.authenticate(AuthScope::User(KUid(1000)), &mut input(&["newpw"]), &v));
        assert!(!a.authenticate(AuthScope::User(KUid(1000)), &mut input(&["alicepw"]), &v));
    }

    #[test]
    fn locked_account_rejected() {
        let v = vfs_with_dbs();
        v.install_file(
            "/etc/shadows/alice",
            b"alice:!:19000:0:99999:7:::\n",
            Mode(0o600),
            KUid(1000),
            KGid(1000),
        )
        .unwrap();
        let mut a = AuthDaemon::new();
        assert!(!a.authenticate(AuthScope::User(KUid(1000)), &mut input(&["anything"]), &v));
    }
}
