//! The pid-bound syscall context every userland component calls through.
//!
//! A [`Process`] pairs a kernel borrow with one pid and routes each call
//! through [`Kernel::dispatch`] — the typed ABI boundary — instead of the
//! raw `sys_*(pid, ...)` methods. Routing userland through dispatch is
//! what makes it observable: registered interceptors (fault injection,
//! trace record/replay, per-class metering) see every call a binary or
//! daemon makes, which the raw methods bypass.
//!
//! The file helpers ([`Process::read_file`] and friends) mirror the
//! kernel's convenience helpers but issue their open/read/write/close
//! legs through dispatch too, so a program's whole-file IO is equally
//! fault-exposed and traced.

use sim_kernel::cred::{Gid, Uid};
use sim_kernel::error::{Errno, KResult};
use sim_kernel::kernel::Kernel;
use sim_kernel::net::{Domain, Ipv4, Packet, SockType};
use sim_kernel::syscall::{
    IoctlCmd, IoctlOut, NetfilterOp, NetfilterRule, OpenFlags, RouteOp, Stat, Syscall, Whence,
};
use sim_kernel::task::{NsKind, Pid};
use sim_kernel::vfs::Mode;

/// A pid-bound handle issuing typed syscalls through the dispatch
/// boundary.
pub struct Process<'k> {
    kernel: &'k Kernel,
    pid: Pid,
}

impl<'k> Process<'k> {
    /// Binds `pid` to `kernel`.
    pub fn new(kernel: &'k Kernel, pid: Pid) -> Process<'k> {
        Process { kernel, pid }
    }

    /// The bound pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    // ------------------------------------------------------------- fs --

    /// `open(2)`.
    pub fn open(&mut self, path: &str, flags: OpenFlags) -> KResult<i32> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Open {
                    path: path.to_string(),
                    flags,
                },
            )
            .fd()
    }

    /// `close(2)`.
    pub fn close(&mut self, fd: i32) -> KResult<()> {
        self.kernel.dispatch(self.pid, Syscall::Close { fd }).unit()
    }

    /// `read(2)` — returns up to `count` bytes.
    pub fn read(&mut self, fd: i32, count: usize) -> KResult<Vec<u8>> {
        self.kernel
            .dispatch(self.pid, Syscall::Read { fd, count })
            .data()
    }

    /// `write(2)`.
    pub fn write(&mut self, fd: i32, data: &[u8]) -> KResult<usize> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Write {
                    fd,
                    data: data.to_vec(),
                },
            )
            .size()
    }

    /// `lseek(2)`.
    pub fn lseek(&mut self, fd: i32, offset: i64, whence: Whence) -> KResult<usize> {
        self.kernel
            .dispatch(self.pid, Syscall::Lseek { fd, offset, whence })
            .size()
    }

    /// `stat(2)`.
    pub fn stat(&mut self, path: &str) -> KResult<Stat> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Stat {
                    path: path.to_string(),
                },
            )
            .stat()
    }

    /// `lstat(2)`.
    pub fn lstat(&mut self, path: &str) -> KResult<Stat> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Lstat {
                    path: path.to_string(),
                },
            )
            .stat()
    }

    /// `chmod(2)`.
    pub fn chmod(&mut self, path: &str, mode: Mode) -> KResult<()> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Chmod {
                    path: path.to_string(),
                    mode,
                },
            )
            .unit()
    }

    /// `chown(2)`.
    pub fn chown(&mut self, path: &str, uid: Option<Uid>, gid: Option<Gid>) -> KResult<()> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Chown {
                    path: path.to_string(),
                    uid,
                    gid,
                },
            )
            .unit()
    }

    /// `mkdir(2)`.
    pub fn mkdir(&mut self, path: &str, mode: Mode) -> KResult<()> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Mkdir {
                    path: path.to_string(),
                    mode,
                },
            )
            .unit()
    }

    /// `unlink(2)`.
    pub fn unlink(&mut self, path: &str) -> KResult<()> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Unlink {
                    path: path.to_string(),
                },
            )
            .unit()
    }

    /// `rmdir(2)`.
    pub fn rmdir(&mut self, path: &str) -> KResult<()> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Rmdir {
                    path: path.to_string(),
                },
            )
            .unit()
    }

    /// `rename(2)`.
    pub fn rename(&mut self, from: &str, to: &str) -> KResult<()> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Rename {
                    from: from.to_string(),
                    to: to.to_string(),
                },
            )
            .unit()
    }

    /// `symlink(2)`.
    pub fn symlink(&mut self, target: &str, linkpath: &str) -> KResult<()> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Symlink {
                    target: target.to_string(),
                    linkpath: linkpath.to_string(),
                },
            )
            .unit()
    }

    /// `chdir(2)`.
    pub fn chdir(&mut self, path: &str) -> KResult<()> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Chdir {
                    path: path.to_string(),
                },
            )
            .unit()
    }

    /// `readdir(3)`.
    pub fn readdir(&mut self, path: &str) -> KResult<Vec<String>> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Readdir {
                    path: path.to_string(),
                },
            )
            .names()
    }

    /// `pipe(2)`.
    pub fn pipe(&mut self) -> KResult<(i32, i32)> {
        self.kernel.dispatch(self.pid, Syscall::Pipe).fd_pair()
    }

    // ------------------------------------------------------------- id --

    /// `setuid(2)`.
    pub fn setuid(&mut self, uid: Uid) -> KResult<()> {
        self.kernel
            .dispatch(self.pid, Syscall::Setuid { uid })
            .unit()
    }

    /// `seteuid(2)`.
    pub fn seteuid(&mut self, uid: Uid) -> KResult<()> {
        self.kernel
            .dispatch(self.pid, Syscall::Seteuid { uid })
            .unit()
    }

    /// `setgid(2)`.
    pub fn setgid(&mut self, gid: Gid) -> KResult<()> {
        self.kernel
            .dispatch(self.pid, Syscall::Setgid { gid })
            .unit()
    }

    /// `setgroups(2)`.
    pub fn setgroups(&mut self, groups: &[Gid]) -> KResult<()> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Setgroups {
                    groups: groups.to_vec(),
                },
            )
            .unit()
    }

    /// `getuid(2)`.
    pub fn getuid(&mut self) -> KResult<Uid> {
        self.kernel.dispatch(self.pid, Syscall::Getuid).uid()
    }

    /// `geteuid(2)`.
    pub fn geteuid(&mut self) -> KResult<Uid> {
        self.kernel.dispatch(self.pid, Syscall::Geteuid).uid()
    }

    /// `getgid(2)`.
    pub fn getgid(&mut self) -> KResult<Gid> {
        self.kernel.dispatch(self.pid, Syscall::Getgid).gid()
    }

    // -------------------------------------------------- ioctl / mount --

    /// `ioctl(2)`.
    pub fn ioctl(&mut self, fd: i32, cmd: IoctlCmd) -> KResult<IoctlOut> {
        self.kernel
            .dispatch(self.pid, Syscall::Ioctl { fd, cmd })
            .ioctl()
    }

    /// `mount(2)`.
    pub fn mount(
        &mut self,
        source: &str,
        target: &str,
        fstype: &str,
        options: &str,
    ) -> KResult<()> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Mount {
                    source: source.to_string(),
                    target: target.to_string(),
                    fstype: fstype.to_string(),
                    options: options.to_string(),
                },
            )
            .unit()
    }

    /// `umount(2)`.
    pub fn umount(&mut self, target: &str) -> KResult<()> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Umount {
                    target: target.to_string(),
                },
            )
            .unit()
    }

    // ------------------------------------------------------------ net --

    /// `socket(2)`.
    pub fn socket(&mut self, domain: Domain, stype: SockType, protocol: u8) -> KResult<i32> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Socket {
                    domain,
                    stype,
                    protocol,
                },
            )
            .fd()
    }

    /// `bind(2)`.
    pub fn bind(&mut self, fd: i32, addr: Ipv4, port: u16) -> KResult<()> {
        self.kernel
            .dispatch(self.pid, Syscall::Bind { fd, addr, port })
            .unit()
    }

    /// `listen(2)`.
    pub fn listen(&mut self, fd: i32) -> KResult<()> {
        self.kernel
            .dispatch(self.pid, Syscall::Listen { fd })
            .unit()
    }

    /// `connect(2)`.
    pub fn connect(&mut self, fd: i32, addr: Ipv4, port: u16) -> KResult<()> {
        self.kernel
            .dispatch(self.pid, Syscall::Connect { fd, addr, port })
            .unit()
    }

    /// `accept(2)`.
    pub fn accept(&mut self, fd: i32) -> KResult<i32> {
        self.kernel.dispatch(self.pid, Syscall::Accept { fd }).fd()
    }

    /// `send(2)`.
    pub fn send(&mut self, fd: i32, data: &[u8]) -> KResult<usize> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Send {
                    fd,
                    data: data.to_vec(),
                },
            )
            .size()
    }

    /// `recv(2)`.
    pub fn recv(&mut self, fd: i32, max: usize) -> KResult<Vec<u8>> {
        self.kernel
            .dispatch(self.pid, Syscall::Recv { fd, max })
            .data()
    }

    /// Raw packet reception.
    pub fn recv_packet(&mut self, fd: i32) -> KResult<Packet> {
        self.kernel
            .dispatch(self.pid, Syscall::RecvPacket { fd })
            .packet()
    }

    /// `sendto(2)`.
    pub fn sendto(&mut self, fd: i32, addr: Ipv4, port: u16, data: &[u8]) -> KResult<usize> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Sendto {
                    fd,
                    addr,
                    port,
                    data: data.to_vec(),
                },
            )
            .size()
    }

    /// Raw packet transmission.
    pub fn send_packet(&mut self, fd: i32, pkt: Packet) -> KResult<()> {
        self.kernel
            .dispatch(self.pid, Syscall::SendPacket { fd, pkt })
            .unit()
    }

    /// `socketpair(2)`.
    pub fn socketpair(&mut self) -> KResult<(i32, i32)> {
        self.kernel
            .dispatch(self.pid, Syscall::Socketpair)
            .fd_pair()
    }

    /// Netfilter administration.
    pub fn netfilter(&mut self, op: NetfilterOp) -> KResult<()> {
        self.kernel
            .dispatch(self.pid, Syscall::Netfilter { op })
            .unit()
    }

    /// Lists the netfilter OUTPUT chain.
    pub fn netfilter_list(&mut self) -> KResult<Vec<NetfilterRule>> {
        self.kernel
            .dispatch(self.pid, Syscall::NetfilterList)
            .rules()
    }

    /// Routing-table ioctls.
    pub fn ioctl_route(&mut self, op: RouteOp) -> KResult<()> {
        self.kernel
            .dispatch(self.pid, Syscall::IoctlRoute { op })
            .unit()
    }

    // -------------------------------------------------------- process --

    /// `fork(2)`.
    pub fn fork(&mut self) -> KResult<Pid> {
        self.kernel.dispatch(self.pid, Syscall::Fork).pid()
    }

    /// `execve(2)` — returns the resolved binary path.
    pub fn execve(&mut self, path: &str) -> KResult<String> {
        self.kernel
            .dispatch(
                self.pid,
                Syscall::Execve {
                    path: path.to_string(),
                },
            )
            .path()
    }

    /// `unshare(2)`.
    pub fn unshare(&mut self, kind: NsKind) -> KResult<()> {
        self.kernel
            .dispatch(self.pid, Syscall::Unshare { kind })
            .unit()
    }

    /// `exit(2)`.
    pub fn exit(&mut self, status: i32) -> KResult<()> {
        self.kernel
            .dispatch(self.pid, Syscall::Exit { status })
            .unit()
    }

    /// `waitpid(2)`.
    pub fn wait(&mut self, child: Pid) -> KResult<i32> {
        self.kernel
            .dispatch(self.pid, Syscall::Wait { child })
            .status()
    }

    // ---------------------------------------------------- file helpers --

    /// Opens, reads fully, and closes — every leg through dispatch.
    pub fn read_file(&mut self, path: &str) -> KResult<Vec<u8>> {
        let fd = self.open(path, OpenFlags::read_only())?;
        let mut buf = Vec::new();
        loop {
            let chunk = match self.read(fd, 65536) {
                Ok(c) => c,
                Err(e) => {
                    let _ = self.close(fd);
                    return Err(e);
                }
            };
            let n = chunk.len();
            buf.extend_from_slice(&chunk);
            if n < 65536 {
                break;
            }
        }
        self.close(fd)?;
        Ok(buf)
    }

    /// Opens, reads fully as UTF-8, and closes.
    pub fn read_to_string(&mut self, path: &str) -> KResult<String> {
        String::from_utf8(self.read_file(path)?).map_err(|_| Errno::EINVAL)
    }

    /// Creates/truncates and writes a whole file.
    pub fn write_file(&mut self, path: &str, data: &[u8], mode: Mode) -> KResult<()> {
        let fd = self.open(path, OpenFlags::create_trunc(mode))?;
        if let Err(e) = self.write(fd, data) {
            let _ = self.close(fd);
            return Err(e);
        }
        self.close(fd)
    }

    /// Appends to an existing file.
    pub fn append_file(&mut self, path: &str, data: &[u8]) -> KResult<()> {
        let fd = self.open(path, OpenFlags::append_only())?;
        if let Err(e) = self.write(fd, data) {
            let _ = self.close(fd);
            return Err(e);
        }
        self.close(fd)
    }
}
