//! Coverage-point instrumentation for the command-line binaries.
//!
//! The paper validates functional equivalence with exhaustive test scripts
//! and reports gcov line coverage above 90% for each setuid binary
//! (Table 7). Our binaries are instrumented with named coverage points at
//! every branch/policy path; the functional-equivalence suite drives both
//! modes and the report gives hit/declared percentages per binary.

use std::collections::BTreeMap;

/// Coverage state: declared points per binary and hit counters.
#[derive(Debug, Default, Clone)]
pub struct Coverage {
    declared: BTreeMap<String, Vec<&'static str>>,
    hits: BTreeMap<(String, &'static str), u64>,
}

/// A per-binary coverage summary row (Table 7 shape).
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageRow {
    /// Binary path.
    pub binary: String,
    /// Number of declared points.
    pub declared: usize,
    /// Number of points hit at least once.
    pub hit: usize,
    /// Percentage hit.
    pub percent: f64,
}

impl Coverage {
    /// Creates empty coverage state.
    pub fn new() -> Coverage {
        Coverage::default()
    }

    /// Declares the full point list for a binary (its denominator).
    pub fn declare(&mut self, binary: &str, points: &[&'static str]) {
        self.declared.insert(binary.to_string(), points.to_vec());
    }

    /// Records a hit.
    pub fn hit(&mut self, binary: &str, point: &'static str) {
        *self.hits.entry((binary.to_string(), point)).or_insert(0) += 1;
    }

    /// Hit count for one point.
    pub fn count(&self, binary: &str, point: &'static str) -> u64 {
        self.hits
            .get(&(binary.to_string(), point))
            .copied()
            .unwrap_or(0)
    }

    /// Summary rows for all declared binaries.
    pub fn report(&self) -> Vec<CoverageRow> {
        self.declared
            .iter()
            .map(|(binary, points)| {
                let hit = points.iter().filter(|p| self.count(binary, p) > 0).count();
                CoverageRow {
                    binary: binary.clone(),
                    declared: points.len(),
                    hit,
                    percent: if points.is_empty() {
                        100.0
                    } else {
                        100.0 * hit as f64 / points.len() as f64
                    },
                }
            })
            .collect()
    }

    /// Unions another coverage state into this one (merging runs on both
    /// systems, as Table 7 aggregates per binary).
    pub fn merge_from(&mut self, other: &Coverage) {
        for (binary, points) in &other.declared {
            self.declared
                .entry(binary.clone())
                .or_insert_with(|| points.clone());
        }
        for ((binary, point), count) in &other.hits {
            *self.hits.entry((binary.clone(), point)).or_insert(0) += count;
        }
    }

    /// Points never hit for a binary (for widening the test suite).
    pub fn missed(&self, binary: &str) -> Vec<&'static str> {
        self.declared
            .get(binary)
            .map(|points| {
                points
                    .iter()
                    .filter(|p| self.count(binary, p) == 0)
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_hit_report() {
        let mut c = Coverage::new();
        c.declare(
            "/bin/mount",
            &["parse", "fstab_hit", "fstab_miss", "mount_ok"],
        );
        c.hit("/bin/mount", "parse");
        c.hit("/bin/mount", "parse");
        c.hit("/bin/mount", "mount_ok");
        let rows = c.report();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].declared, 4);
        assert_eq!(rows[0].hit, 2);
        assert!((rows[0].percent - 50.0).abs() < 1e-9);
        assert_eq!(c.count("/bin/mount", "parse"), 2);
        assert_eq!(c.missed("/bin/mount"), vec!["fstab_hit", "fstab_miss"]);
    }

    #[test]
    fn undeclared_binary_absent_from_report() {
        let mut c = Coverage::new();
        c.hit("/bin/ghost", "x");
        assert!(c.report().is_empty());
        assert!(c.missed("/bin/ghost").is_empty());
    }

    #[test]
    fn empty_point_list_is_100_percent() {
        let mut c = Coverage::new();
        c.declare("/bin/trivial", &[]);
        assert!((c.report()[0].percent - 100.0).abs() < 1e-9);
    }
}
