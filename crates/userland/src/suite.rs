//! The functional-equivalence battery (§5.3).
//!
//! A deterministic script that exercises every studied utility — success
//! paths, policy denials, and authentication failures — on a booted
//! system. The equivalence test runs it on both images and compares
//! outcomes; the Table 7 generator runs it and reads the coverage
//! counters.

use crate::bins::mail;
use crate::system::{System, SystemMode};
use sim_kernel::cred::Uid;
use sim_kernel::net::{Domain, Ipv4, Packet, Route, SockType, L4};
use sim_kernel::syscall::RouteOp;
use sim_kernel::task::Pid;
use sim_kernel::vfs::Mode;

/// One step's observable outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepOutcome {
    /// Step name (stable across modes).
    pub name: &'static str,
    /// Exit code.
    pub code: i32,
    /// Whether the step succeeded (exit 0).
    pub ok: bool,
}

/// Sessions used by the battery.
pub struct Sessions {
    /// root's shell.
    pub root: Pid,
    /// alice's shell (cdrom/dialout/staff member).
    pub alice: Pid,
    /// bob's shell (may print as alice).
    pub bob: Pid,
    /// carol's shell (admin group).
    pub carol: Pid,
}

/// Logs one user in, retrying a bounded number of times. A plain login
/// is infallible on a healthy image, but under fault injection any one
/// attempt may take a spurious `EINTR`/`ENOMEM` mid-way; retrying is
/// exactly what a real login manager does.
fn login_retry(sys: &mut System, name: &str, password: &str) -> Pid {
    let mut last = None;
    for _ in 0..64 {
        match sys.login(name, password) {
            Ok(pid) => return Pid(pid.0),
            Err(e) => last = Some(e),
        }
    }
    panic!("login {} failed after retries: {:?}", name, last);
}

/// Logs everybody in.
pub fn open_sessions(sys: &mut System) -> Sessions {
    Sessions {
        root: login_retry(sys, "root", "rootpw"),
        alice: login_retry(sys, "alice", "alicepw"),
        bob: login_retry(sys, "bob", "bobpw"),
        carol: login_retry(sys, "carol", "carolpw"),
    }
}

/// Runs the full battery; returns each step's outcome in order.
///
/// The logical clock is advanced past the authentication window between
/// steps, so every step starts from "no recent authentication" on both
/// systems and recency behaviour is probed only where a step does so
/// explicitly.
pub fn run_functional_suite(sys: &mut System) -> Vec<StepOutcome> {
    let s = open_sessions(sys);
    let mut out: Vec<StepOutcome> = Vec::new();

    macro_rules! step {
        ($name:literal, $session:expr, $path:expr, $args:expr, $input:expr) => {{
            sys.kernel.advance_clock(400); // out-of-window for every step
            // A harness-level error (the fork or wait itself failing) is
            // only reachable under fault injection; record it as a failed
            // step instead of tearing the battery down.
            match sys.run($session, $path, $args, $input) {
                Ok(r) => out.push(StepOutcome {
                    name: $name,
                    code: r.code,
                    ok: r.ok(),
                }),
                Err(_) => out.push(StepOutcome {
                    name: $name,
                    code: 127,
                    ok: false,
                }),
            }
        }};
    }

    // ----- mount family (§4.2) -----
    step!(
        "mount-cdrom-alice",
        s.alice,
        "/bin/mount",
        &["/mnt/cdrom"],
        &[]
    );
    step!(
        "mount-dup-busy-ok",
        s.alice,
        "/bin/mount",
        &["/mnt/cdrom"],
        &[]
    );
    step!(
        "umount-cdrom-by-other-denied",
        s.bob,
        "/bin/umount",
        &["/mnt/cdrom"],
        &[]
    );
    step!(
        "umount-cdrom-alice",
        s.alice,
        "/bin/umount",
        &["/mnt/cdrom"],
        &[]
    );
    step!(
        "mount-over-etc-denied",
        s.alice,
        "/bin/mount",
        &["/dev/cdrom", "/etc", "iso9660", "ro"],
        &[]
    );
    step!("mount-usb-bob", s.bob, "/bin/mount", &["/media/usb"], &[]);
    step!(
        "umount-usb-by-other-ok",
        s.alice,
        "/bin/umount",
        &["/media/usb"],
        &[]
    );
    step!(
        "mount-root-anywhere",
        s.root,
        "/bin/mount",
        &["/dev/cdrom", "/mnt/cdrom", "iso9660", "ro"],
        &[]
    );
    step!("umount-root", s.root, "/bin/umount", &["/mnt/cdrom"], &[]);
    step!(
        "mount-missing-entry",
        s.alice,
        "/bin/mount",
        &["/mnt/nowhere"],
        &[]
    );

    // fusermount: alice makes her own dir and mounts a fuse fs there.
    let _ = sys
        .process(s.alice)
        .mkdir("/home/alice/fuse", sim_kernel::vfs::Mode(0o755));
    // Protego needs the mountpoint whitelisted; the admin adds it to
    // fstab and the daemon syncs (legacy mount consults fstab directly).
    let _ = sys.process(s.root).append_file(
        "/etc/fstab",
        b"fuse /home/alice/fuse fuse rw,user,noauto 0 0\n",
    );
    let _ = sys.sync_policies();
    step!(
        "fusermount-own-dir",
        s.alice,
        "/bin/fusermount",
        &["/home/alice/fuse"],
        &[]
    );
    step!(
        "umount-fuse",
        s.alice,
        "/bin/umount",
        &["/home/alice/fuse"],
        &[]
    );
    // Eject with the media mounted: eject unmounts first (policy
    // permitting), then ejects.
    step!(
        "mount-before-eject",
        s.alice,
        "/bin/mount",
        &["/mnt/cdrom"],
        &[]
    );
    step!(
        "eject-alice",
        s.alice,
        "/usr/bin/eject",
        &["/dev/cdrom"],
        &[]
    );

    // Reload the media for later steps.
    {
        let dev = sys.kernel.devices.read().id_by_path("/dev/cdrom").unwrap();
        let mut devices = sys.kernel.devices.write();
        if let sim_kernel::dev::DeviceKind::Block(b) = &mut devices.get_mut(dev).unwrap().kind {
            b.ejected = false;
        }
    }

    // ----- network diagnostics (§4.1.1) -----
    step!("ping-gateway", s.alice, "/bin/ping", &["10.0.0.1"], &[]);
    step!("ping-remote", s.alice, "/bin/ping", &["8.8.8.8"], &[]);
    step!(
        "ping-dead-host",
        s.alice,
        "/bin/ping",
        &["203.0.113.9"],
        &[]
    );
    step!("ping6", s.alice, "/bin/ping6", &["8.8.8.8"], &[]);
    step!(
        "arping-neighbour",
        s.alice,
        "/usr/bin/arping",
        &["10.0.0.2"],
        &[]
    );
    step!(
        "traceroute",
        s.alice,
        "/usr/bin/traceroute",
        &["8.8.8.8"],
        &[]
    );
    step!(
        "tracepath",
        s.alice,
        "/usr/bin/tracepath",
        &["8.8.8.8"],
        &[]
    );
    step!("mtr", s.alice, "/usr/bin/mtr", &["8.8.8.8"], &[]);
    step!(
        "fping-sweep",
        s.alice,
        "/usr/bin/fping",
        &["10.0.0.1", "10.0.0.2", "203.0.113.9"],
        &[]
    );
    step!("ping-usage", s.alice, "/bin/ping", &[], &[]);
    step!(
        "arping-no-reply",
        s.alice,
        "/usr/bin/arping",
        &["8.8.8.8"],
        &[]
    );

    // With no route installed, the send path fails identically on both
    // systems (ENETUNREACH).
    let default_route = Route {
        dest: Ipv4::ANY,
        prefix: 0,
        gateway: Some(Ipv4::new(10, 0, 0, 1)),
        dev: "eth0".into(),
        created_by: Uid::ROOT,
    };
    let _ = sys.process(s.root).ioctl_route(RouteOp::Del {
        dest: Ipv4::ANY,
        prefix: 0,
    });
    step!("ping-no-route", s.alice, "/bin/ping", &["8.8.8.8"], &[]);
    let _ = sys.process(s.root).ioctl_route(RouteOp::Add(default_route));

    // ----- delegation (§4.3) -----
    step!(
        "sudo-carol-admin",
        s.carol,
        "/usr/bin/sudo",
        &["/bin/id"],
        &["carolpw"]
    );
    // Within the window: no password needed (recency).
    match sys.run(s.carol, "/usr/bin/sudo", &["/bin/id"], &[]) {
        Ok(r) => out.push(StepOutcome {
            name: "sudo-carol-recency",
            code: r.code,
            ok: r.ok(),
        }),
        Err(_) => out.push(StepOutcome {
            name: "sudo-carol-recency",
            code: 127,
            ok: false,
        }),
    }
    step!(
        "sudo-carol-wrong-password",
        s.carol,
        "/usr/bin/sudo",
        &["/bin/id"],
        &["wrongpw"]
    );
    step!(
        "sudo-alice-not-in-sudoers",
        s.alice,
        "/usr/bin/sudo",
        &["/bin/id"],
        &["alicepw"]
    );
    step!(
        "sudo-bob-lpr-as-alice",
        s.bob,
        "/usr/bin/sudo",
        &["-u", "alice", "/usr/bin/lpr", "hello"],
        &["bobpw"]
    );
    step!(
        "sudo-bob-sh-as-alice-denied",
        s.bob,
        "/usr/bin/sudo",
        &["-u", "alice", "/bin/sh"],
        &["bobpw"]
    );
    step!(
        "lpr-bob-direct-denied",
        s.bob,
        "/usr/bin/lpr",
        &["direct"],
        &[]
    );
    step!("su-alice-to-bob", s.alice, "/bin/su", &["bob"], &["bobpw"]);
    step!(
        "su-wrong-password",
        s.alice,
        "/bin/su",
        &["bob"],
        &["alicepw"]
    );
    // Note: bob, not carol — carol's admin sudoers rule would authorize
    // her with *her own* password on Protego (the kernel's first-match
    // delegation), while legacy su always demands the target's. For a
    // user with no sudo rule, both systems ask for root's password.
    step!("su-to-root", s.bob, "/bin/su", &[], &["rootpw"]);
    step!(
        "sudoedit-carol",
        s.carol,
        "/usr/bin/sudoedit",
        &["/etc/motd"],
        &["carolpw"]
    );
    step!(
        "sudoedit-bob-denied",
        s.bob,
        "/usr/bin/sudoedit",
        &["/etc/motd"],
        &["bobpw"]
    );

    // ----- groups (§4.3) -----
    step!("newgrp-member", s.alice, "/usr/bin/newgrp", &["staff"], &[]);
    step!(
        "newgrp-nonmember-password",
        s.bob,
        "/usr/bin/newgrp",
        &["staff"],
        &["staffpw"]
    );
    step!(
        "newgrp-nonmember-wrong",
        s.bob,
        "/usr/bin/newgrp",
        &["staff"],
        &["nope"]
    );
    step!(
        "newgrp-unprotected-denied",
        s.bob,
        "/usr/bin/newgrp",
        &["cdrom"],
        &[]
    );
    step!(
        "gpasswd-admin-set",
        s.alice,
        "/usr/bin/gpasswd",
        &["staff", "newstaffpw"],
        &[]
    );
    let _ = sys.sync_policies();
    step!(
        "newgrp-new-password",
        s.bob,
        "/usr/bin/newgrp",
        &["staff"],
        &["newstaffpw"]
    );
    step!(
        "gpasswd-nonadmin-denied",
        s.bob,
        "/usr/bin/gpasswd",
        &["staff", "bobpw"],
        &[]
    );
    step!(
        "gpasswd-remove-password",
        s.alice,
        "/usr/bin/gpasswd",
        &["-r", "staff"],
        &[]
    );
    let _ = sys.sync_policies();
    step!(
        "newgrp-after-removal-denied",
        s.bob,
        "/usr/bin/newgrp",
        &["staff"],
        &["newstaffpw"]
    );
    // Restore the original group password for idempotence.
    step!(
        "gpasswd-admin-restore",
        s.alice,
        "/usr/bin/gpasswd",
        &["staff", crate::image::STAFF_GROUP_PASSWORD],
        &[]
    );
    let _ = sys.sync_policies();

    // ----- credential databases (§4.4) -----
    step!(
        "passwd-alice",
        s.alice,
        "/usr/bin/passwd",
        &["newalicepw"],
        &["alicepw"]
    );
    let _ = sys.sync_policies();
    step!(
        "passwd-alice-wrong-old",
        s.alice,
        "/usr/bin/passwd",
        &["evilpw"],
        &["notheroldpw"]
    );
    step!(
        "passwd-bob-cannot-touch-alice",
        s.bob,
        "/usr/bin/passwd",
        &["alice", "owned"],
        &["bobpw"]
    );
    step!(
        "passwd-root-sets-bob",
        s.root,
        "/usr/bin/passwd",
        &["bob", "newbobpw"],
        &[]
    );
    let _ = sys.sync_policies();
    step!(
        "passwd-root-restores-bob",
        s.root,
        "/usr/bin/passwd",
        &["bob", "bobpw"],
        &[]
    );
    let _ = sys.sync_policies();
    step!(
        "passwd-alice-back",
        s.alice,
        "/usr/bin/passwd",
        &["alicepw"],
        &["newalicepw"]
    );
    let _ = sys.sync_policies();
    step!("chsh-valid", s.alice, "/usr/bin/chsh", &["/bin/bash"], &[]);
    let _ = sys.sync_policies();
    step!(
        "chsh-invalid",
        s.alice,
        "/usr/bin/chsh",
        &["/tmp/evil"],
        &[]
    );
    step!(
        "chfn-gecos",
        s.alice,
        "/usr/bin/chfn",
        &["Alice", "Liddell"],
        &[]
    );
    let _ = sys.sync_policies();
    step!(
        "vipw-root",
        s.root,
        "/usr/sbin/vipw",
        &["bob", "/bin/zsh"],
        &[]
    );
    let _ = sys.sync_policies();
    step!(
        "vipw-nonroot-denied",
        s.alice,
        "/usr/sbin/vipw",
        &["bob", "/bin/sh"],
        &[]
    );
    step!(
        "login-carol",
        s.root,
        "/bin/login",
        &["carol"],
        &["carolpw"]
    );
    step!("login-wrong", s.root, "/bin/login", &["carol"], &["bad"]);
    step!(
        "login-no-such-user",
        s.root,
        "/bin/login",
        &["mallory"],
        &["x"]
    );

    // ----- PolicyKit-style helpers (§4.3) -----
    step!(
        "pkexec-carol",
        s.carol,
        "/usr/bin/pkexec",
        &["/bin/id"],
        &["carolpw"]
    );
    step!(
        "pkexec-bob-denied",
        s.bob,
        "/usr/bin/pkexec",
        &["/bin/id"],
        &["bobpw"]
    );
    step!(
        "dbus-activate-mta",
        s.alice,
        "/usr/lib/dbus-daemon-launch-helper",
        &["mta"],
        &[]
    );
    step!(
        "dbus-unknown-service",
        s.alice,
        "/usr/lib/dbus-daemon-launch-helper",
        &["nosuch"],
        &[]
    );

    // ----- pppd (§4.1.2) -----
    step!(
        "pppd-fresh-route",
        s.alice,
        "/usr/sbin/pppd",
        &["192.168.99.0", "24"],
        &[]
    );
    step!(
        "pppd-conflicting-route",
        s.alice,
        "/usr/sbin/pppd",
        &["10.0.0.0", "8"],
        &[]
    );

    // ----- interface-design utilities (§4.5, Table 4) -----
    step!(
        "dmcrypt-get-device",
        s.alice,
        "/usr/bin/dmcrypt-get-device",
        &["cryptohome"],
        &[]
    );
    step!(
        "ssh-keysign",
        s.alice,
        "/usr/lib/ssh-keysign",
        &["host-auth-challenge"],
        &[]
    );
    step!(
        "xorg-mode",
        s.alice,
        "/usr/bin/Xorg",
        &["-mode", "1920", "1080", "-vt", "2"],
        &[]
    );
    step!("pt-chown", s.alice, "/usr/lib/pt_chown", &[], &[]);
    step!(
        "chromium-sandbox",
        s.alice,
        "/usr/lib/chromium-sandbox",
        &[],
        &[]
    );

    // ----- long-tail utilities (§5.4) -----
    step!(
        "lppasswd-own",
        s.alice,
        "/usr/bin/lppasswd",
        &["printpw"],
        &[]
    );
    step!(
        "ecryptfs-private-mount",
        s.alice,
        "/sbin/mount.ecryptfs_private",
        &[],
        &[]
    );
    step!(
        "ecryptfs-private-umount",
        s.alice,
        "/bin/umount",
        &["/home/alice/Private"],
        &[]
    );
    step!("iptables-list", s.root, "/sbin/iptables", &["-L"], &[]);
    step!(
        "iptables-user-denied",
        s.alice,
        "/sbin/iptables",
        &["-A", "x", "any", "drop"],
        &[]
    );
    // Administrator adds and removes a rule (the paper's iptables
    // extension path).
    step!(
        "iptables-admin-add",
        s.root,
        "/sbin/iptables",
        &["-A", "suite-rule", "udp", "accept"],
        &[]
    );
    step!(
        "iptables-admin-del",
        s.root,
        "/sbin/iptables",
        &["-D", "suite-rule"],
        &[]
    );
    step!(
        "iptables-del-missing",
        s.root,
        "/sbin/iptables",
        &["-D", "never-existed"],
        &[]
    );

    out
}

/// Deliberate behavioural *differences* between the two systems — the
/// capabilities Protego adds and the attacks it removes (§4.1.1). Each
/// outcome records the Protego-expected result; the divergence test
/// asserts the opposite on legacy.
pub fn run_divergence_suite(sys: &mut System) -> Vec<StepOutcome> {
    let s = open_sessions(sys);
    let mut out = Vec::new();

    // 1. A user-written, never-privileged ping: EPERM on stock Linux,
    //    works under Protego.
    let r = sys
        .run(s.alice, "/home/alice/bin/myping", &["10.0.0.1"], &[])
        .expect("run myping");
    out.push(StepOutcome {
        name: "myping-custom-tool",
        code: r.code,
        ok: r.ok(),
    });

    // 2. The administrator removes the setuid bit from ping (hardening):
    //    on stock Linux the utility breaks for users; Protego is
    //    unaffected because it never had the bit.
    let _ = sys.process(s.root).chmod("/bin/ping", Mode(0o755));
    let r = sys
        .run(s.alice, "/bin/ping", &["10.0.0.1"], &[])
        .expect("run ping");
    out.push(StepOutcome {
        name: "ping-without-setuid-bit",
        code: r.code,
        ok: r.ok(),
    });
    if sys.mode == SystemMode::Legacy {
        let _ = sys.process(s.root).chmod("/bin/ping", Mode(0o4755));
    }

    // 3. Spoofing: a raw sender claims a TCP source port owned by another
    //    user. Stock Linux stops unprivileged users at socket creation
    //    but lets *root* spoof freely; Protego's netfilter rule stops the
    //    spoof regardless of privilege.
    let victim_sock = sys
        .process(s.bob)
        .socket(Domain::Inet, SockType::Stream, 0)
        .expect("victim socket");
    sys.process(s.bob)
        .bind(victim_sock, Ipv4::ANY, 5555)
        .expect("victim bind");
    let spoofer = match sys.mode {
        // The strongest spoofer each system permits to hold a raw socket.
        SystemMode::Legacy => s.root,
        SystemMode::Protego => s.alice,
    };
    let spoof_result = sys
        .process(spoofer)
        .socket(Domain::Inet, SockType::Raw, 6)
        .and_then(|fd| {
            let uid = sys.kernel.task(spoofer).unwrap().cred.euid;
            let pkt = Packet {
                src: Ipv4::new(10, 0, 0, 100),
                dst: Ipv4::new(8, 8, 8, 8),
                ttl: 64,
                l4: L4::Tcp {
                    src_port: 5555,
                    dst_port: 80,
                    syn: false,
                },
                payload: b"RST".to_vec(),
                from_raw_socket: true,
                sender_uid: uid,
            };
            sys.process(spoofer).send_packet(fd, pkt)
        });
    out.push(StepOutcome {
        name: "spoofed-tcp-from-raw-socket",
        code: spoof_result
            .as_ref()
            .err()
            .map(|e| e.as_errno_i32())
            .unwrap_or(0),
        ok: spoof_result.is_ok(),
    });

    // 4. tcptraceroute's raw TCP probes: fine on the setuid legacy
    //    binary, filtered on a stock Protego policy until the admin
    //    refines the whitelist (§5.4).
    let r = sys
        .run(s.alice, "/usr/bin/tcptraceroute", &["8.8.8.8"], &[])
        .expect("run tcptraceroute");
    out.push(StepOutcome {
        name: "tcptraceroute-default-policy",
        code: r.code,
        ok: r.ok(),
    });
    out
}

/// Runs the mail/web service checks, which need long-lived daemon tasks;
/// returns (step name, ok) pairs.
pub fn run_service_suite(sys: &mut System) -> Vec<StepOutcome> {
    let mut out = Vec::new();
    let s = open_sessions(sys);

    // The mail server: root-started on legacy; the mail user on Protego.
    let mail_session = match sys.mode {
        SystemMode::Legacy => s.root,
        SystemMode::Protego => sys.service_session(
            sim_kernel::cred::Uid(mail::MAIL_UID),
            sim_kernel::cred::Gid(8),
            "/bin/sh",
        ),
    };
    let (mta, startup) = sys
        .spawn_service(mail_session, "/usr/sbin/exim4", &["--daemon"])
        .expect("spawn exim");
    out.push(StepOutcome {
        name: "exim-bind-25",
        code: startup.code,
        ok: startup.ok(),
    });
    if let Some(fd) = mail::parse_listen_fd(&startup) {
        let reply = mail::smtp_send(sys, s.bob, mta, fd, "alice", "hi alice").unwrap_or_default();
        out.push(StepOutcome {
            name: "smtp-deliver-alice",
            code: if reply.starts_with("250") { 0 } else { 1 },
            ok: reply.starts_with("250"),
        });
        let reply = mail::smtp_send(sys, s.alice, mta, fd, "bob", "hi bob").unwrap_or_default();
        out.push(StepOutcome {
            name: "smtp-deliver-bob",
            code: if reply.starts_with("250") { 0 } else { 1 },
            ok: reply.starts_with("250"),
        });
    }

    // The rogue web service trying to take port 25 as well.
    let rogue_session = match sys.mode {
        SystemMode::Legacy => s.root,
        SystemMode::Protego => sys.service_session(
            sim_kernel::cred::Uid(mail::WWW_UID),
            sim_kernel::cred::Gid(33),
            "/bin/sh",
        ),
    };
    let (_rogue, r) = sys
        .spawn_service(rogue_session, "/usr/sbin/rogue-mta", &[])
        .expect("spawn rogue");
    out.push(StepOutcome {
        name: "rogue-port25-attempt",
        code: r.code,
        ok: r.ok(),
    });

    // The web server on port 80.
    let web_session = match sys.mode {
        SystemMode::Legacy => s.root,
        SystemMode::Protego => sys.service_session(
            sim_kernel::cred::Uid(mail::WWW_UID),
            sim_kernel::cred::Gid(33),
            "/bin/sh",
        ),
    };
    let (web, startup) = sys
        .spawn_service(web_session, "/usr/sbin/httpd", &["--daemon"])
        .expect("spawn httpd");
    out.push(StepOutcome {
        name: "httpd-bind-80",
        code: startup.code,
        ok: startup.ok(),
    });
    if let Some(fd) = mail::parse_listen_fd(&startup) {
        let resp = mail::http_get(sys, s.alice, web, fd).unwrap_or_default();
        out.push(StepOutcome {
            name: "http-get",
            code: if resp.contains("200 OK") { 0 } else { 1 },
            ok: resp.contains("200 OK"),
        });
    }
    out
}
