//! # userland
//!
//! The simulated distribution: a bootable system image (legacy Linux with
//! setuid-to-root binaries, or Protego with kernel-enforced policies),
//! reimplementations of the studied command-line utilities, and the two
//! trusted services — the authentication utility and the monitoring
//! daemon (Figure 1 / Table 2 of the paper).
//!
//! # Examples
//!
//! ```
//! use userland::{boot, SystemMode};
//!
//! // Boot Protego; alice mounts the CD-ROM with a non-setuid mount(8).
//! let mut sys = boot(SystemMode::Protego);
//! let alice = sys.login("alice", "alicepw").unwrap();
//! let r = sys.run(alice, "/bin/mount", &["/mnt/cdrom"], &[]).unwrap();
//! assert!(r.ok(), "{}", r.stdout);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authd;
pub mod bins;
pub mod coverage;
pub mod db;
pub mod image;
pub mod monitord;
pub mod process;
pub mod scenario;
pub mod suite;
pub mod system;
pub mod workload;

pub use image::boot;
pub use process::Process;
pub use system::{AttackEvent, BinEntry, Exploit, Proc, RunResult, System, SystemMode};
