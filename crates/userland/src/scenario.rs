//! Adversarial scenario programs over the typed [`Syscall`] ABI — the
//! executable substrate of `tables fuzz` (ROADMAP item 3).
//!
//! A [`Scenario`] is a deterministic little program: an optional fault
//! plan (a seeded errno storm and/or scheduled one-shots for the
//! [`FaultInjector`](sim_kernel::syscall::FaultInjector)) followed by a
//! list of [`ScenarioOp`]s executed by a fixed cast of actors (root,
//! alice, bob) against a freshly booted [`System`]. Ops mix raw
//! unprivileged syscalls (namespace churn in a `/tmp/fuzz` scratch tree,
//! credential dances) with *program-level* privileged operations —
//! `/bin/mount` and `/bin/umount` run as real binaries, because that is
//! the level at which the paper promises legacy/Protego equivalence: the
//! legacy setuid binary enforces fstab policy itself while Protego's
//! kernel whitelist decides, and both must leave the caller seeing the
//! same outcome.
//!
//! Running a scenario yields a scenario-level [`Trace`]: one entry per
//! op, `pid` normalized to the actor index (raw pids differ across modes
//! — Protego boots monitord) and `ret` a normalized outcome rendering
//! (inode numbers excluded; they are allocation order, not behavior).
//! [`run_differential`] executes a scenario under both modes and applies
//! the oracles:
//!
//! * **equivalence** — fault-free scenarios must produce byte-identical
//!   traces under legacy and Protego ([`Trace::first_divergence`]);
//! * **determinism** — scenarios with a fault plan are run twice per
//!   mode and must reproduce their own trace byte-identically (faults
//!   perturb *which* calls fail, which may legitimately differ across
//!   modes, so the cross-mode diff is not a sound oracle there);
//! * **security** — no privileged artifacts
//!   ([`privileged_artifacts`]), no VFS namespace invariant violations
//!   ([`vfs_namespace_violations`]), no panics, and a consumed one-shot
//!   fault never fires twice.
//!
//! Scenarios serialize to a line-oriented text form (`scenario/v1`) so
//! failing cases can be committed verbatim to the
//! `tests/fuzz_regressions.rs` corpus and replayed forever; the
//! generator and shrinker live in `bench::fuzz`.

use crate::image::boot;
use crate::system::{System, SystemMode};
use crate::workload::{privileged_artifacts, vfs_namespace_violations};
use sim_kernel::cred::{Gid, Uid};
use sim_kernel::error::Errno;
use sim_kernel::syscall::{FaultConfig, SyscallClass};
use sim_kernel::task::{NsKind, Pid};
use sim_kernel::trace::{Trace, TraceEntry};
use sim_kernel::vfs::Mode;

/// The fixed cast: `(login, password)` per actor index. Actor 0 is root;
/// scenario ops refer to actors by index, which doubles as the
/// normalized `pid` in the scenario trace.
pub const ACTORS: [(&str, &str); 3] = [("root", "rootpw"), ("alice", "alicepw"), ("bob", "bobpw")];

/// One step of a scenario program. `actor` indexes [`ACTORS`].
///
/// Filesystem and credential ops go straight through the typed dispatch
/// ([`crate::Process`]); `RunMount`/`RunUmount` execute the real
/// binaries through [`System::run`] because raw `mount(2)` from an
/// unprivileged user diverges across modes *by design* (legacy denies
/// without the setuid binary's euid; Protego's kernel whitelist allows
/// fstab user mounts) — the paper's equivalence holds at the program
/// level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioOp {
    /// `mkdir(path, 0o755)`.
    Mkdir {
        /// Actor index.
        actor: usize,
        /// Absolute path.
        path: String,
    },
    /// `rmdir(path)`.
    Rmdir {
        /// Actor index.
        actor: usize,
        /// Absolute path.
        path: String,
    },
    /// Write `len` deterministic bytes to `path` (create/truncate).
    WriteFile {
        /// Actor index.
        actor: usize,
        /// Absolute path.
        path: String,
        /// Payload length in bytes.
        len: usize,
    },
    /// Read the file back; the outcome records the byte count.
    ReadFile {
        /// Actor index.
        actor: usize,
        /// Absolute path.
        path: String,
    },
    /// `rename(from, to)`.
    Rename {
        /// Actor index.
        actor: usize,
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },
    /// `unlink(path)`.
    Unlink {
        /// Actor index.
        actor: usize,
        /// Absolute path.
        path: String,
    },
    /// `symlink(target, link)`.
    Symlink {
        /// Actor index.
        actor: usize,
        /// Link target (may dangle or loop).
        target: String,
        /// Link path.
        link: String,
    },
    /// `stat(path)`; outcome renders mode/uid/gid/size (not the inode).
    Stat {
        /// Actor index.
        actor: usize,
        /// Absolute path.
        path: String,
    },
    /// `readdir(path)`; outcome renders the sorted name list.
    Readdir {
        /// Actor index.
        actor: usize,
        /// Absolute path.
        path: String,
    },
    /// `chmod(path, mode)`.
    Chmod {
        /// Actor index.
        actor: usize,
        /// Absolute path.
        path: String,
        /// New mode bits.
        mode: u32,
    },
    /// `chown(path, uid, -1)`.
    Chown {
        /// Actor index.
        actor: usize,
        /// Absolute path.
        path: String,
        /// New owner uid.
        uid: u32,
    },
    /// Run `/bin/mount` with the given argv (1 arg = fstab lookup,
    /// 2–4 args = source/target/fstype/options).
    RunMount {
        /// Actor index.
        actor: usize,
        /// Arguments to the binary.
        args: Vec<String>,
    },
    /// Run `/bin/umount <target>`.
    RunUmount {
        /// Actor index.
        actor: usize,
        /// Mountpoint to unmount.
        target: String,
    },
    /// `setuid(uid)` — persists for the actor's later ops.
    Setuid {
        /// Actor index.
        actor: usize,
        /// Target uid.
        uid: u32,
    },
    /// `seteuid(uid)`.
    Seteuid {
        /// Actor index.
        actor: usize,
        /// Target euid.
        uid: u32,
    },
    /// `setgid(gid)`.
    Setgid {
        /// Actor index.
        actor: usize,
        /// Target gid.
        gid: u32,
    },
    /// `setgroups(gids)`.
    Setgroups {
        /// Actor index.
        actor: usize,
        /// Supplementary groups.
        gids: Vec<u32>,
    },
    /// Credential read-back: getuid/geteuid/getgid in one op.
    GetIds {
        /// Actor index.
        actor: usize,
    },
    /// `unshare(kind)`.
    Unshare {
        /// Actor index.
        actor: usize,
        /// Namespace kind.
        kind: NsKind,
    },
    /// Root appends a well-formed line to `/etc/fstab` (policy source).
    FstabAdd {
        /// Device field.
        device: String,
        /// Mountpoint field.
        mountpoint: String,
        /// Filesystem type field.
        fstype: String,
        /// Comma-joined options field.
        options: String,
    },
    /// One monitord poll cycle ([`System::sync_policies`]); a no-op on
    /// legacy, where `mount(8)` re-reads fstab itself — the symmetric
    /// "policy reload" primitive.
    PolicySync,
}

fn ns_kind_name(kind: NsKind) -> &'static str {
    match kind {
        NsKind::User => "user",
        NsKind::Mount => "mount",
        NsKind::Net => "net",
        NsKind::Pid => "pid",
    }
}

fn parse_ns_kind(s: &str) -> Option<NsKind> {
    match s {
        "user" => Some(NsKind::User),
        "mount" => Some(NsKind::Mount),
        "net" => Some(NsKind::Net),
        "pid" => Some(NsKind::Pid),
        _ => None,
    }
}

impl ScenarioOp {
    /// The actor executing this op (0 for root-implicit ops).
    pub fn actor(&self) -> usize {
        match self {
            ScenarioOp::Mkdir { actor, .. }
            | ScenarioOp::Rmdir { actor, .. }
            | ScenarioOp::WriteFile { actor, .. }
            | ScenarioOp::ReadFile { actor, .. }
            | ScenarioOp::Rename { actor, .. }
            | ScenarioOp::Unlink { actor, .. }
            | ScenarioOp::Symlink { actor, .. }
            | ScenarioOp::Stat { actor, .. }
            | ScenarioOp::Readdir { actor, .. }
            | ScenarioOp::Chmod { actor, .. }
            | ScenarioOp::Chown { actor, .. }
            | ScenarioOp::RunMount { actor, .. }
            | ScenarioOp::RunUmount { actor, .. }
            | ScenarioOp::Setuid { actor, .. }
            | ScenarioOp::Seteuid { actor, .. }
            | ScenarioOp::Setgid { actor, .. }
            | ScenarioOp::Setgroups { actor, .. }
            | ScenarioOp::GetIds { actor }
            | ScenarioOp::Unshare { actor, .. } => *actor,
            ScenarioOp::FstabAdd { .. } | ScenarioOp::PolicySync => 0,
        }
    }

    /// One-line serialization; tokens are space-separated and paths are
    /// generator-controlled (no spaces), so the grammar stays trivial.
    pub fn render(&self) -> String {
        match self {
            ScenarioOp::Mkdir { actor, path } => format!("mkdir {} {}", actor, path),
            ScenarioOp::Rmdir { actor, path } => format!("rmdir {} {}", actor, path),
            ScenarioOp::WriteFile { actor, path, len } => {
                format!("write {} {} {}", actor, path, len)
            }
            ScenarioOp::ReadFile { actor, path } => format!("read {} {}", actor, path),
            ScenarioOp::Rename { actor, from, to } => format!("rename {} {} {}", actor, from, to),
            ScenarioOp::Unlink { actor, path } => format!("unlink {} {}", actor, path),
            ScenarioOp::Symlink {
                actor,
                target,
                link,
            } => format!("symlink {} {} {}", actor, target, link),
            ScenarioOp::Stat { actor, path } => format!("stat {} {}", actor, path),
            ScenarioOp::Readdir { actor, path } => format!("readdir {} {}", actor, path),
            ScenarioOp::Chmod { actor, path, mode } => {
                format!("chmod {} {} {:o}", actor, path, mode)
            }
            ScenarioOp::Chown { actor, path, uid } => format!("chown {} {} {}", actor, path, uid),
            ScenarioOp::RunMount { actor, args } => format!("mount {} {}", actor, args.join(" ")),
            ScenarioOp::RunUmount { actor, target } => format!("umount {} {}", actor, target),
            ScenarioOp::Setuid { actor, uid } => format!("setuid {} {}", actor, uid),
            ScenarioOp::Seteuid { actor, uid } => format!("seteuid {} {}", actor, uid),
            ScenarioOp::Setgid { actor, gid } => format!("setgid {} {}", actor, gid),
            ScenarioOp::Setgroups { actor, gids } => {
                let list: Vec<String> = gids.iter().map(|g| g.to_string()).collect();
                format!("setgroups {} {}", actor, list.join(","))
            }
            ScenarioOp::GetIds { actor } => format!("getids {}", actor),
            ScenarioOp::Unshare { actor, kind } => {
                format!("unshare {} {}", actor, ns_kind_name(*kind))
            }
            ScenarioOp::FstabAdd {
                device,
                mountpoint,
                fstype,
                options,
            } => format!("fstab_add {} {} {} {}", device, mountpoint, fstype, options),
            ScenarioOp::PolicySync => "policy_sync".to_string(),
        }
    }

    /// Parses [`ScenarioOp::render`] output.
    pub fn parse(line: &str) -> Result<ScenarioOp, String> {
        let toks: Vec<&str> = line.split_whitespace().collect();
        let bad = || format!("bad op line: {:?}", line);
        let actor = |s: &str| -> Result<usize, String> {
            let a: usize = s.parse().map_err(|_| bad())?;
            if a >= ACTORS.len() {
                return Err(format!("actor {} out of range in {:?}", a, line));
            }
            Ok(a)
        };
        let num = |s: &str| -> Result<u32, String> { s.parse().map_err(|_| bad()) };
        match toks.as_slice() {
            ["mkdir", a, p] => Ok(ScenarioOp::Mkdir {
                actor: actor(a)?,
                path: p.to_string(),
            }),
            ["rmdir", a, p] => Ok(ScenarioOp::Rmdir {
                actor: actor(a)?,
                path: p.to_string(),
            }),
            ["write", a, p, n] => Ok(ScenarioOp::WriteFile {
                actor: actor(a)?,
                path: p.to_string(),
                len: n.parse().map_err(|_| bad())?,
            }),
            ["read", a, p] => Ok(ScenarioOp::ReadFile {
                actor: actor(a)?,
                path: p.to_string(),
            }),
            ["rename", a, f, t] => Ok(ScenarioOp::Rename {
                actor: actor(a)?,
                from: f.to_string(),
                to: t.to_string(),
            }),
            ["unlink", a, p] => Ok(ScenarioOp::Unlink {
                actor: actor(a)?,
                path: p.to_string(),
            }),
            ["symlink", a, t, l] => Ok(ScenarioOp::Symlink {
                actor: actor(a)?,
                target: t.to_string(),
                link: l.to_string(),
            }),
            ["stat", a, p] => Ok(ScenarioOp::Stat {
                actor: actor(a)?,
                path: p.to_string(),
            }),
            ["readdir", a, p] => Ok(ScenarioOp::Readdir {
                actor: actor(a)?,
                path: p.to_string(),
            }),
            ["chmod", a, p, m] => Ok(ScenarioOp::Chmod {
                actor: actor(a)?,
                path: p.to_string(),
                mode: u32::from_str_radix(m, 8).map_err(|_| bad())?,
            }),
            ["chown", a, p, u] => Ok(ScenarioOp::Chown {
                actor: actor(a)?,
                path: p.to_string(),
                uid: num(u)?,
            }),
            ["mount", a, rest @ ..] if !rest.is_empty() && rest.len() <= 4 => {
                Ok(ScenarioOp::RunMount {
                    actor: actor(a)?,
                    args: rest.iter().map(|s| s.to_string()).collect(),
                })
            }
            ["umount", a, t] => Ok(ScenarioOp::RunUmount {
                actor: actor(a)?,
                target: t.to_string(),
            }),
            ["setuid", a, u] => Ok(ScenarioOp::Setuid {
                actor: actor(a)?,
                uid: num(u)?,
            }),
            ["seteuid", a, u] => Ok(ScenarioOp::Seteuid {
                actor: actor(a)?,
                uid: num(u)?,
            }),
            ["setgid", a, g] => Ok(ScenarioOp::Setgid {
                actor: actor(a)?,
                gid: num(g)?,
            }),
            ["setgroups", a, list] => {
                let gids: Result<Vec<u32>, String> = list
                    .split(',')
                    .map(|g| g.parse().map_err(|_| bad()))
                    .collect();
                Ok(ScenarioOp::Setgroups {
                    actor: actor(a)?,
                    gids: gids?,
                })
            }
            ["getids", a] => Ok(ScenarioOp::GetIds { actor: actor(a)? }),
            ["unshare", a, k] => Ok(ScenarioOp::Unshare {
                actor: actor(a)?,
                kind: parse_ns_kind(k).ok_or_else(bad)?,
            }),
            ["fstab_add", d, m, f, o] => Ok(ScenarioOp::FstabAdd {
                device: d.to_string(),
                mountpoint: m.to_string(),
                fstype: f.to_string(),
                options: o.to_string(),
            }),
            ["policy_sync"] => Ok(ScenarioOp::PolicySync),
            _ => Err(bad()),
        }
    }
}

/// A complete scenario program: fault plan + op list, serializable as a
/// `scenario/v1` text block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Display name (family + seed, or a regression label).
    pub name: String,
    /// Seeded random errno storm `(seed, rate)`; `rate` means 1-in-rate.
    pub storm: Option<(u64, u64)>,
    /// Scheduled one-shots: `(syscall name, k, errno)`.
    pub one_shots: Vec<(String, u64, Errno)>,
    /// The op list, executed in order.
    pub ops: Vec<ScenarioOp>,
}

impl Scenario {
    /// A fault-free scenario with the given name and ops.
    pub fn new(name: &str, ops: Vec<ScenarioOp>) -> Scenario {
        Scenario {
            name: name.to_string(),
            storm: None,
            one_shots: Vec::new(),
            ops,
        }
    }

    /// Whether any fault plan is configured (storm or one-shots).
    pub fn has_faults(&self) -> bool {
        self.storm.is_some() || !self.one_shots.is_empty()
    }

    /// Text serialization, suitable for committing as a regression.
    pub fn render(&self) -> String {
        let mut out = format!("scenario/v1 {}\n", self.name);
        if let Some((seed, rate)) = self.storm {
            out.push_str(&format!("storm {} {}\n", seed, rate));
        }
        for (syscall, k, errno) in &self.one_shots {
            out.push_str(&format!("one_shot {} {} {}\n", syscall, k, errno.name()));
        }
        for op in &self.ops {
            out.push_str(&format!("op {}\n", op.render()));
        }
        out
    }

    /// Parses [`Scenario::render`] output.
    pub fn parse(text: &str) -> Result<Scenario, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty scenario")?;
        let name = header
            .strip_prefix("scenario/v1 ")
            .ok_or_else(|| format!("bad scenario header: {:?}", header))?
            .to_string();
        let mut sc = Scenario::new(&name, Vec::new());
        for line in lines {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("op ") {
                sc.ops.push(ScenarioOp::parse(rest)?);
            } else if let Some(rest) = line.strip_prefix("storm ") {
                let toks: Vec<&str> = rest.split_whitespace().collect();
                match toks.as_slice() {
                    [seed, rate] => {
                        sc.storm = Some((
                            seed.parse().map_err(|_| format!("bad storm: {:?}", line))?,
                            rate.parse().map_err(|_| format!("bad storm: {:?}", line))?,
                        ));
                    }
                    _ => return Err(format!("bad storm: {:?}", line)),
                }
            } else if let Some(rest) = line.strip_prefix("one_shot ") {
                let toks: Vec<&str> = rest.split_whitespace().collect();
                match toks.as_slice() {
                    [syscall, k, errno] => sc.one_shots.push((
                        syscall.to_string(),
                        k.parse().map_err(|_| format!("bad one_shot: {:?}", line))?,
                        Errno::from_name(errno)
                            .ok_or_else(|| format!("unknown errno in {:?}", line))?,
                    )),
                    _ => return Err(format!("bad one_shot: {:?}", line)),
                }
            } else {
                return Err(format!("unrecognized scenario line: {:?}", line));
            }
        }
        Ok(sc)
    }

    fn fault_config(&self) -> Option<FaultConfig> {
        if !self.has_faults() {
            return None;
        }
        let (seed, rate) = self.storm.unwrap_or((0, 0));
        let mut config = FaultConfig {
            seed,
            rate,
            classes: vec![SyscallClass::Fs, SyscallClass::Net, SyscallClass::Id],
            palette: vec![Errno::EINTR, Errno::ENOMEM, Errno::EACCES],
            one_shots: Vec::new(),
        };
        for (syscall, k, errno) in &self.one_shots {
            // OneShot takes a &'static str; intern through the ABI's own
            // name table so serialized names round-trip.
            if let Some(name) = syscall_static_name(syscall) {
                config.one_shots.push(sim_kernel::syscall::OneShot {
                    syscall: name,
                    k: *k,
                    errno: *errno,
                });
            }
        }
        Some(config)
    }
}

/// Resolves a serialized syscall name to the ABI's `&'static str` for
/// [`sim_kernel::syscall::OneShot`]. Unknown names resolve to `None` and
/// the one-shot is dropped (it could never match a dispatch anyway).
fn syscall_static_name(name: &str) -> Option<&'static str> {
    const NAMES: [&str; 12] = [
        "open", "read", "write", "stat", "mkdir", "unlink", "rename", "symlink", "mount", "umount",
        "setuid", "setgid",
    ];
    NAMES.iter().copied().find(|n| *n == name)
}

/// Everything observed from one mode's execution of a scenario.
#[derive(Clone, Debug)]
pub struct ModeRun {
    /// Scenario-level trace: one entry per op, pid = actor index.
    pub trace: Trace,
    /// Privileged-artifact detector output (must be empty).
    pub artifacts: Vec<String>,
    /// VFS namespace invariant violations (must be empty).
    pub vfs_violations: Vec<String>,
    /// Whether a consumed one-shot fired more than once (must be false).
    pub one_shot_overfire: bool,
}

/// Executes `scenario` under `mode` on a fresh boot. Panics inside the
/// run are caught (the run happens on a scratch thread) and reported as
/// `Err(message)`.
pub fn run_scenario(scenario: &Scenario, mode: SystemMode) -> Result<ModeRun, String> {
    let sc = scenario.clone();
    let handle = std::thread::Builder::new()
        .name(format!("scenario-{:?}", mode))
        .spawn(move || run_scenario_inner(&sc, mode))
        .expect("spawn scenario thread");
    match handle.join() {
        Ok(run) => Ok(run),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(msg)
        }
    }
}

fn run_scenario_inner(scenario: &Scenario, mode: SystemMode) -> ModeRun {
    let mut sys = boot(mode);
    // Sessions and the scratch tree are created fault-free so every
    // scenario starts from an identical, clean state.
    let sessions: Vec<Pid> = ACTORS
        .iter()
        .map(|(name, pw)| sys.login(name, pw).expect("actor login"))
        .collect();
    let root = sessions[0];
    sys.process(root)
        .mkdir("/tmp/fuzz", Mode(0o777))
        .expect("scratch dir");

    let fault_stats = scenario
        .fault_config()
        .map(|config| sys.attach_fault_injector(config).1);

    let mut trace = Trace::default();
    for op in &scenario.ops {
        sys.kernel.advance_clock(1);
        let ret = exec_op(&mut sys, &sessions, op);
        trace.entries.push(TraceEntry {
            pid: op.actor() as u32,
            call: op.render(),
            ret,
        });
    }

    let one_shot_overfire = match (&scenario.storm, fault_stats.as_ref()) {
        // With random injection off, every injection is a one-shot:
        // more injections than configured one-shots means a re-fire.
        (None, Some(stats)) => {
            let s = stats.lock().unwrap();
            let fired = s.one_shots_fired.iter().filter(|f| **f).count() as u64;
            s.injected > scenario.one_shots.len() as u64 || s.injected != fired
        }
        _ => false,
    };

    let vfs_violations = vfs_namespace_violations(&sys);
    let artifacts = privileged_artifacts(&mut sys);
    ModeRun {
        trace,
        artifacts,
        vfs_violations,
        one_shot_overfire,
    }
}

fn fmt_unit(r: Result<(), Errno>) -> String {
    match r {
        Ok(()) => "ok".to_string(),
        Err(e) => e.name().to_string(),
    }
}

fn exec_op(sys: &mut System, sessions: &[Pid], op: &ScenarioOp) -> String {
    let pid = sessions[op.actor()];
    match op {
        ScenarioOp::Mkdir { path, .. } => fmt_unit(sys.process(pid).mkdir(path, Mode(0o755))),
        ScenarioOp::Rmdir { path, .. } => fmt_unit(sys.process(pid).rmdir(path)),
        ScenarioOp::WriteFile { path, len, .. } => {
            let data = vec![b'a' + (len % 23) as u8; *len];
            fmt_unit(sys.process(pid).write_file(path, &data, Mode(0o644)))
        }
        ScenarioOp::ReadFile { path, .. } => match sys.process(pid).read_file(path) {
            Ok(data) => format!("ok:{}", data.len()),
            Err(e) => e.name().to_string(),
        },
        ScenarioOp::Rename { from, to, .. } => fmt_unit(sys.process(pid).rename(from, to)),
        ScenarioOp::Unlink { path, .. } => fmt_unit(sys.process(pid).unlink(path)),
        ScenarioOp::Symlink { target, link, .. } => {
            fmt_unit(sys.process(pid).symlink(target, link))
        }
        ScenarioOp::Stat { path, .. } => match sys.process(pid).stat(path) {
            // The inode number is allocation order, not behavior —
            // renders differ across mode images, so it stays out.
            Ok(st) => format!(
                "mode={:o},uid={},gid={},size={}",
                st.mode.0, st.uid.0, st.gid.0, st.size
            ),
            Err(e) => e.name().to_string(),
        },
        ScenarioOp::Readdir { path, .. } => match sys.process(pid).readdir(path) {
            Ok(mut names) => {
                names.sort();
                format!("ok:[{}]", names.join(","))
            }
            Err(e) => e.name().to_string(),
        },
        ScenarioOp::Chmod { path, mode, .. } => fmt_unit(sys.process(pid).chmod(path, Mode(*mode))),
        ScenarioOp::Chown { path, uid, .. } => {
            fmt_unit(sys.process(pid).chown(path, Some(Uid(*uid)), None))
        }
        ScenarioOp::RunMount { args, .. } => {
            let argv: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
            match sys.run(pid, "/bin/mount", &argv, &[]) {
                Ok(r) => format!("exit={}", r.code),
                Err(e) => e.name().to_string(),
            }
        }
        ScenarioOp::RunUmount { target, .. } => match sys.run(pid, "/bin/umount", &[target], &[]) {
            Ok(r) => format!("exit={}", r.code),
            Err(e) => e.name().to_string(),
        },
        ScenarioOp::Setuid { uid, .. } => fmt_unit(sys.process(pid).setuid(Uid(*uid))),
        ScenarioOp::Seteuid { uid, .. } => fmt_unit(sys.process(pid).seteuid(Uid(*uid))),
        ScenarioOp::Setgid { gid, .. } => fmt_unit(sys.process(pid).setgid(Gid(*gid))),
        ScenarioOp::Setgroups { gids, .. } => {
            let groups: Vec<Gid> = gids.iter().map(|g| Gid(*g)).collect();
            fmt_unit(sys.process(pid).setgroups(&groups))
        }
        ScenarioOp::GetIds { .. } => {
            let uid = sys.process(pid).getuid();
            let euid = sys.process(pid).geteuid();
            let gid = sys.process(pid).getgid();
            match (uid, euid, gid) {
                (Ok(u), Ok(e), Ok(g)) => format!("uid={},euid={},gid={}", u.0, e.0, g.0),
                _ => "E-GETID".to_string(),
            }
        }
        ScenarioOp::Unshare { kind, .. } => fmt_unit(sys.process(pid).unshare(*kind)),
        ScenarioOp::FstabAdd {
            device,
            mountpoint,
            fstype,
            options,
        } => {
            let line = format!("{} {} {} {} 0 0\n", device, mountpoint, fstype, options);
            let root = sessions[0];
            fmt_unit(sys.process(root).append_file("/etc/fstab", line.as_bytes()))
        }
        ScenarioOp::PolicySync => match sys.sync_policies() {
            // The pushed-anything bool legitimately differs by mode
            // (legacy has no monitord); only errors are behavior.
            Ok(_) => "ok".to_string(),
            Err(e) => e.name().to_string(),
        },
    }
}

/// A differential failure, ranked: panics and security-oracle hits beat
/// determinism and equivalence findings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Failure {
    /// A mode panicked mid-scenario.
    Panic {
        /// Which mode.
        mode: SystemMode,
        /// Panic message.
        message: String,
    },
    /// The privileged-artifact detector fired.
    Artifact {
        /// Which mode.
        mode: SystemMode,
        /// Detector description.
        what: String,
    },
    /// A VFS namespace invariant was violated.
    Invariant {
        /// Which mode.
        mode: SystemMode,
        /// Violation description.
        what: String,
    },
    /// A consumed one-shot fault fired more than once.
    OneShotRearm {
        /// Which mode.
        mode: SystemMode,
    },
    /// The same mode produced two different traces for one scenario.
    NonDeterministic {
        /// Which mode.
        mode: SystemMode,
        /// Rendered trace diff.
        report: String,
    },
    /// Legacy and Protego traces diverged on a fault-free scenario.
    Divergence {
        /// First diverging entry index.
        index: usize,
        /// Rendered trace diff with context.
        report: String,
        /// Legacy's entry at the divergence (rendered).
        legacy: String,
        /// Protego's entry at the divergence (rendered).
        protego: String,
    },
}

fn mode_name(mode: SystemMode) -> &'static str {
    match mode {
        SystemMode::Legacy => "legacy",
        SystemMode::Protego => "protego",
    }
}

impl Failure {
    /// A stable signature for shrinking: two failures with equal
    /// signatures are "the same bug". Digits are stripped from detector
    /// descriptions (inode numbers and counts shift as ops are removed)
    /// but divergence entries keep their full rendering — if removing an
    /// op changes the divergent entry's bytes, the removal is rejected
    /// and the op is kept, which is exactly the conservative behavior a
    /// minimizer wants.
    pub fn signature(&self) -> String {
        let strip = |s: &str| -> String { s.chars().filter(|c| !c.is_ascii_digit()).collect() };
        match self {
            Failure::Panic { mode, message } => {
                format!("panic:{}:{}", mode_name(*mode), strip(message))
            }
            Failure::Artifact { mode, what } => {
                format!("artifact:{}:{}", mode_name(*mode), strip(what))
            }
            Failure::Invariant { mode, what } => {
                format!("invariant:{}:{}", mode_name(*mode), strip(what))
            }
            Failure::OneShotRearm { mode } => format!("rearm:{}", mode_name(*mode)),
            Failure::NonDeterministic { mode, .. } => format!("nondet:{}", mode_name(*mode)),
            Failure::Divergence {
                legacy, protego, ..
            } => format!("divergence:{}<->{}", legacy, protego),
        }
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Panic { mode, message } => {
                write!(f, "[{}] panic: {}", mode_name(*mode), message)
            }
            Failure::Artifact { mode, what } => {
                write!(f, "[{}] privileged artifact: {}", mode_name(*mode), what)
            }
            Failure::Invariant { mode, what } => {
                write!(f, "[{}] namespace invariant: {}", mode_name(*mode), what)
            }
            Failure::OneShotRearm { mode } => {
                write!(f, "[{}] consumed one-shot fault re-fired", mode_name(*mode))
            }
            Failure::NonDeterministic { mode, report } => {
                write!(
                    f,
                    "[{}] non-deterministic trace:\n{}",
                    mode_name(*mode),
                    report
                )
            }
            Failure::Divergence { index, report, .. } => {
                write!(f, "legacy/protego divergence at op {}:\n{}", index, report)
            }
        }
    }
}

/// The outcome of a differential run.
#[derive(Clone, Debug)]
pub struct DiffOutcome {
    /// The highest-ranked failure, if any oracle fired.
    pub failure: Option<Failure>,
    /// Legacy's run, when it did not panic.
    pub legacy: Option<ModeRun>,
    /// Protego's run, when it did not panic.
    pub protego: Option<ModeRun>,
}

/// Runs `scenario` under both modes and applies the oracles (see the
/// module docs for which oracle applies when).
pub fn run_differential(scenario: &Scenario) -> DiffOutcome {
    let mut outcome = DiffOutcome {
        failure: None,
        legacy: None,
        protego: None,
    };
    let mut runs: Vec<(SystemMode, ModeRun)> = Vec::new();
    for mode in [SystemMode::Legacy, SystemMode::Protego] {
        match run_scenario(scenario, mode) {
            Ok(run) => {
                // Fault plans make the cross-mode diff unsound (which
                // calls fail may legitimately differ), so the oracle for
                // faulted scenarios is per-mode determinism instead.
                if scenario.has_faults() && outcome.failure.is_none() {
                    match run_scenario(scenario, mode) {
                        Ok(again) => {
                            if let Some(report) = run.trace.divergence_report(&again.trace, 3) {
                                outcome.failure = Some(Failure::NonDeterministic { mode, report });
                            }
                        }
                        Err(message) => {
                            outcome.failure = Some(Failure::Panic { mode, message });
                        }
                    }
                }
                runs.push((mode, run));
            }
            Err(message) => {
                if outcome.failure.is_none() {
                    outcome.failure = Some(Failure::Panic { mode, message });
                }
            }
        }
    }
    // Security oracles rank above determinism/equivalence findings.
    for (mode, run) in &runs {
        if let Some(what) = run.artifacts.first() {
            outcome.failure = Some(Failure::Artifact {
                mode: *mode,
                what: what.clone(),
            });
        } else if let Some(what) = run.vfs_violations.first() {
            outcome.failure = Some(Failure::Invariant {
                mode: *mode,
                what: what.clone(),
            });
        } else if run.one_shot_overfire {
            outcome.failure = Some(Failure::OneShotRearm { mode: *mode });
        }
    }
    for (mode, run) in runs {
        match mode {
            SystemMode::Legacy => outcome.legacy = Some(run),
            SystemMode::Protego => outcome.protego = Some(run),
        }
    }
    if outcome.failure.is_none() && !scenario.has_faults() {
        if let (Some(l), Some(p)) = (&outcome.legacy, &outcome.protego) {
            if let Some(index) = l.trace.first_divergence(&p.trace) {
                let side = |t: &Trace| {
                    t.entries
                        .get(index)
                        .map(|e| e.render())
                        .unwrap_or_else(|| "<end of trace>".to_string())
                };
                outcome.failure = Some(Failure::Divergence {
                    index,
                    report: l.trace.divergence_report(&p.trace, 3).unwrap_or_default(),
                    legacy: side(&l.trace),
                    protego: side(&p.trace),
                });
            }
        }
    }
    outcome
}

/// Convenience for the shrinker and tests: the failure signature a
/// scenario produces, or `None` when every oracle is green.
pub fn failure_signature(scenario: &Scenario) -> Option<String> {
    run_differential(scenario).failure.map(|f| f.signature())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        let mut sc = Scenario::new(
            "sample-1",
            vec![
                ScenarioOp::Mkdir {
                    actor: 1,
                    path: "/tmp/fuzz/a".into(),
                },
                ScenarioOp::WriteFile {
                    actor: 1,
                    path: "/tmp/fuzz/a/f0".into(),
                    len: 17,
                },
                ScenarioOp::RunMount {
                    actor: 1,
                    args: vec!["/mnt/cdrom".into()],
                },
                ScenarioOp::Setgroups {
                    actor: 2,
                    gids: vec![24, 27],
                },
                // Root, deliberately: unprivileged user namespaces are a
                // *documented* cross-mode divergence (the Protego image
                // models a >=3.8 kernel), so equivalence-judged scenarios
                // only unshare as root. See `bench::fuzz`'s generator
                // policy.
                ScenarioOp::Unshare {
                    actor: 0,
                    kind: NsKind::User,
                },
                ScenarioOp::FstabAdd {
                    device: "/dev/sdc1".into(),
                    mountpoint: "/tmp/fuzz/mnt0".into(),
                    fstype: "vfat".into(),
                    options: "rw,user,noauto".into(),
                },
                ScenarioOp::PolicySync,
                ScenarioOp::RunUmount {
                    actor: 1,
                    target: "/mnt/cdrom".into(),
                },
            ],
        );
        sc.storm = Some((0xF00D, 50));
        sc.one_shots.push(("mount".to_string(), 2, Errno::EBUSY));
        sc
    }

    #[test]
    fn scenario_render_parse_roundtrip() {
        let sc = sample();
        let text = sc.render();
        assert_eq!(Scenario::parse(&text).unwrap(), sc);
    }

    #[test]
    fn scenario_parse_rejects_garbage() {
        assert!(Scenario::parse("").is_err());
        assert!(Scenario::parse("scenario/v2 x\n").is_err());
        assert!(Scenario::parse("scenario/v1 x\nop frobnicate 1 /tmp\n").is_err());
        assert!(Scenario::parse("scenario/v1 x\nop mkdir 9 /tmp\n").is_err());
        assert!(Scenario::parse("scenario/v1 x\none_shot mount two EIO\n").is_err());
        assert!(Scenario::parse("scenario/v1 x\none_shot mount 2 EWHAT\n").is_err());
    }

    #[test]
    fn fault_free_sample_is_equivalent_across_modes() {
        let mut sc = sample();
        sc.storm = None;
        sc.one_shots.clear();
        let outcome = run_differential(&sc);
        assert!(
            outcome.failure.is_none(),
            "sample scenario must be clean: {}",
            outcome.failure.unwrap()
        );
        let l = outcome.legacy.unwrap();
        assert_eq!(l.trace.len(), sc.ops.len(), "one trace entry per op");
    }
}
