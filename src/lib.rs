//! # protego
//!
//! A Rust reproduction of *"Practical Techniques to Obviate
//! Setuid-to-Root Binaries"* (Jain, Tsai, John, Porter — EuroSys 2014).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`kernel`] — the simulated Linux kernel substrate (`sim-kernel`);
//! * [`core`] — the Protego security module (`protego-core`);
//! * [`apparmor`] — the AppArmor-like baseline LSM (`apparmor-lsm`);
//! * [`userland`] — the distribution image, setuid binaries, and trusted
//!   services;
//! * [`study`] — the paper's data tables (`setuid-study`);
//! * [`exploits`] — the 40-CVE replay corpus (Table 6).
//!
//! # Quick start
//!
//! ```
//! use protego::userland::{boot, SystemMode};
//!
//! // Boot Protego; an unprivileged user mounts the CD-ROM through a
//! // non-setuid mount(8), the kernel enforcing /etc/fstab's policy.
//! let mut sys = boot(SystemMode::Protego);
//! let alice = sys.login("alice", "alicepw").unwrap();
//! let r = sys.run(alice, "/bin/mount", &["/mnt/cdrom"], &[]).unwrap();
//! assert!(r.ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use apparmor_lsm as apparmor;
pub use exploits;
pub use protego_core as core;
pub use setuid_study as study;
pub use sim_kernel as kernel;
pub use userland;
