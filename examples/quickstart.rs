//! Quickstart: Figure 1 as a runnable trace.
//!
//! Boots both systems and walks the mount example: who is trusted, where
//! the policy is checked, and what an unprivileged user can and cannot
//! do. Run with `cargo run --example quickstart`.

use protego::userland::{boot, SystemMode};

fn main() {
    println!("=== Figure 1: the mount system call on Linux vs Protego ===\n");

    // ------------------------------------------------------------------
    // Stock Linux: trust lives in the setuid /bin/mount binary.
    // ------------------------------------------------------------------
    println!("--- Linux (AppArmor baseline) ---");
    let mut linux = boot(SystemMode::Legacy);
    let init = linux.init_pid();
    let st = linux.kernel.sys_stat(init, "/bin/mount").unwrap();
    println!(
        "/bin/mount is {} owned by uid {} => the binary IS the policy engine",
        st.mode.render(),
        st.uid.0
    );

    let alice = linux.login("alice", "alicepw").unwrap();
    linux.kernel.set_trace(true);

    let r = linux
        .run(alice, "/bin/mount", &["/mnt/cdrom"], &[])
        .unwrap();
    print!("{}", r.stdout);
    println!("  (the setuid binary checked /etc/fstab itself, then called mount() as root)");

    let r = linux
        .run(
            alice,
            "/bin/mount",
            &["/dev/cdrom", "/etc", "iso9660", "ro"],
            &[],
        )
        .unwrap();
    print!("{}", r.stdout);
    println!("  (the *binary* refused; the kernel would have allowed it — euid was 0)\n");
    let _ = linux.run(alice, "/bin/umount", &["/mnt/cdrom"], &[]);

    // ------------------------------------------------------------------
    // Protego: trust lives in the kernel; mount is just a program.
    // ------------------------------------------------------------------
    println!("--- Protego ---");
    let mut protego = boot(SystemMode::Protego);
    let init = protego.init_pid();
    let st = protego.kernel.sys_stat(init, "/bin/mount").unwrap();
    println!(
        "/bin/mount is {} => no privilege anywhere in userspace",
        st.mode.render()
    );
    let policy = protego
        .kernel
        .read_to_string(init, "/proc/protego/mounts")
        .unwrap();
    println!("kernel whitelist (from /etc/fstab via the monitoring daemon):");
    for line in policy.lines() {
        println!("  {}", line);
    }

    let alice = protego.login("alice", "alicepw").unwrap();
    protego.kernel.set_trace(true);

    let r = protego
        .run(alice, "/bin/mount", &["/mnt/cdrom"], &[])
        .unwrap();
    print!("{}", r.stdout);

    let r = protego
        .run(
            alice,
            "/bin/mount",
            &["/dev/cdrom", "/etc", "iso9660", "ro"],
            &[],
        )
        .unwrap();
    print!("{}", r.stdout);
    println!("  (the *kernel* refused: /etc is not whitelisted — even a buggy mount can't do it)");

    // Only the mounting user may umount a "user" entry.
    let bob = protego.login("bob", "bobpw").unwrap();
    let r = protego
        .run(bob, "/bin/umount", &["/mnt/cdrom"], &[])
        .unwrap();
    print!("{}", r.stdout);
    let r = protego
        .run(alice, "/bin/umount", &["/mnt/cdrom"], &[])
        .unwrap();
    print!("{}", r.stdout);

    println!("\nkernel audit trail (Protego):");
    for line in protego.kernel.audit.events() {
        println!("  {}", line);
    }

    // The admin edits fstab; the monitoring daemon re-syncs the kernel.
    println!("\n--- live policy update ---");
    let root = protego.login("root", "rootpw").unwrap();
    protego
        .kernel
        .append_file(
            root,
            "/etc/fstab",
            b"/dev/cdrom /mnt/backup iso9660 ro,users,noauto 0 0\n",
        )
        .unwrap();
    protego.kernel.vfs.mkdir_p("/mnt/backup").unwrap();
    protego.sync_policies().unwrap();
    let r = protego
        .run(alice, "/bin/mount", &["/mnt/backup"], &[])
        .unwrap();
    print!("{}", r.stdout);
    println!("  (fstab edit -> monitord -> /proc/protego/mounts -> kernel, no new setuid code)");
}
