//! Delegation on Protego (§4.3): sudo, su, newgrp, and the
//! setuid-on-exec mechanism for command-restricted rules.
//!
//! Run with `cargo run --example delegation`.

use protego::userland::{boot, SystemMode};

fn main() {
    let mut sys = boot(SystemMode::Protego);
    let init = sys.init_pid();

    println!("=== Kernel-enforced delegation (§4.3) ===\n");
    println!("kernel delegation rules (from /etc/sudoers via the daemon):");
    let rules = sys
        .kernel
        .read_to_string(init, "/proc/protego/sudoers")
        .unwrap();
    for line in rules.lines() {
        println!("  {}", line);
    }

    // ------------------------------------------------------------------
    // carol is in the admin group: full sudo after authenticating.
    // ------------------------------------------------------------------
    let carol = sys.login("carol", "carolpw").unwrap();
    println!("\n--- carol (admin group): sudo id ---");
    let r = sys
        .run(carol, "/usr/bin/sudo", &["/bin/id"], &["carolpw"])
        .unwrap();
    print!("{}", r.stdout);
    println!("--- carol again within 5 minutes: no password (kernel recency) ---");
    let r = sys.run(carol, "/usr/bin/sudo", &["/bin/id"], &[]).unwrap();
    print!("{}", r.stdout);
    println!("--- 6 minutes later: the kernel re-prompts ---");
    sys.kernel.advance_clock(360);
    let r = sys.run(carol, "/usr/bin/sudo", &["/bin/id"], &[]).unwrap();
    print!("{}", r.stdout);

    // ------------------------------------------------------------------
    // bob may run exactly one command as alice.
    // ------------------------------------------------------------------
    let bob = sys.login("bob", "bobpw").unwrap();
    println!("\n--- bob: sudo -u alice lpr (allowed command) ---");
    let r = sys
        .run(
            bob,
            "/usr/bin/sudo",
            &["-u", "alice", "/usr/bin/lpr", "annual report"],
            &["bobpw"],
        )
        .unwrap();
    print!("{}", r.stdout);
    let queue = sys
        .kernel
        .read_to_string(init, "/var/spool/lpd/queue")
        .unwrap();
    println!("  queue now: {}", queue.trim());
    println!("  (the job ran with alice's uid — granted at exec, not before)");

    println!("\n--- bob: sudo -u alice /bin/sh (NOT in the rule) ---");
    let r = sys
        .run(
            bob,
            "/usr/bin/sudo",
            &["-u", "alice", "/bin/sh"],
            &["bobpw"],
        )
        .unwrap();
    print!("{}", r.stdout);
    println!("  (setuid reported success; the exec of a non-permitted binary failed — §4.3)");

    // ------------------------------------------------------------------
    // su requires the *target's* password.
    // ------------------------------------------------------------------
    println!("\n--- alice: su bob with bob's password ---");
    let alice = sys.login("alice", "alicepw").unwrap();
    let r = sys.run(alice, "/bin/su", &["bob"], &["bobpw"]).unwrap();
    print!("{}", r.stdout);
    println!("--- alice: su bob with her own password ---");
    let r = sys.run(alice, "/bin/su", &["bob"], &["alicepw"]).unwrap();
    print!("{}", r.stdout);

    // ------------------------------------------------------------------
    // newgrp: membership or the group password.
    // ------------------------------------------------------------------
    println!("\n--- alice (member): newgrp staff ---");
    let r = sys.run(alice, "/usr/bin/newgrp", &["staff"], &[]).unwrap();
    print!("{}", r.stdout);
    println!("--- bob (non-member): newgrp staff with the group password ---");
    let r = sys
        .run(bob, "/usr/bin/newgrp", &["staff"], &["staffpw"])
        .unwrap();
    print!("{}", r.stdout);
}
