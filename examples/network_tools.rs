//! Network diagnostics without privilege (§4.1): ping/traceroute as
//! unprivileged binaries, a user-written ping, spoofing stopped by
//! netfilter, and the /etc/bind port map.
//!
//! Run with `cargo run --example network_tools`.

use protego::kernel::net::{Domain, Ipv4, Packet, SockType, L4};
use protego::userland::bins::mail;
use protego::userland::{boot, SystemMode};

fn main() {
    println!("=== Networking without setuid (§4.1) ===\n");

    let mut linux = boot(SystemMode::Legacy);
    let mut protego = boot(SystemMode::Protego);

    // ------------------------------------------------------------------
    // The stock tools work identically on both systems.
    // ------------------------------------------------------------------
    let al = linux.login("alice", "alicepw").unwrap();
    let ap = protego.login("alice", "alicepw").unwrap();
    println!("--- ping 8.8.8.8 on both systems ---");
    for (name, sys, s) in [("linux  ", &mut linux, al), ("protego", &mut protego, ap)] {
        let r = sys.run(s, "/bin/ping", &["8.8.8.8"], &[]).unwrap();
        print!("{}: {}", name, r.stdout);
    }
    println!("\n--- traceroute 8.8.8.8 (Protego) ---");
    let r = protego
        .run(ap, "/usr/bin/traceroute", &["8.8.8.8"], &[])
        .unwrap();
    print!("{}", r.stdout);

    // ------------------------------------------------------------------
    // Alice's own ping: EPERM on Linux, works on Protego.
    // ------------------------------------------------------------------
    println!("\n--- alice's hand-written ping (no setuid anywhere) ---");
    let r = linux
        .run(al, "/home/alice/bin/myping", &["10.0.0.1"], &[])
        .unwrap();
    print!("linux  : {}", r.stdout);
    let r = protego
        .run(ap, "/home/alice/bin/myping", &["10.0.0.1"], &[])
        .unwrap();
    print!("protego: {}", r.stdout);

    // ------------------------------------------------------------------
    // Spoofing: claiming bob's TCP port from a raw socket.
    // ------------------------------------------------------------------
    println!("\n--- spoofed TCP segment claiming another user's source port ---");
    for (name, sys) in [("linux  ", &mut linux), ("protego", &mut protego)] {
        let bob = sys.login("bob", "bobpw").unwrap();
        let victim = sys
            .kernel
            .sys_socket(bob, Domain::Inet, SockType::Stream, 0)
            .unwrap();
        sys.kernel.sys_bind(bob, victim, Ipv4::ANY, 6000).unwrap();
        // The strongest raw-capable principal on each system.
        let spoofer = if name.trim() == "linux" {
            sys.login("root", "rootpw").unwrap()
        } else {
            sys.login("alice", "alicepw").unwrap()
        };
        let result = sys
            .kernel
            .sys_socket(spoofer, Domain::Inet, SockType::Raw, 6)
            .and_then(|fd| {
                let uid = sys.kernel.task(spoofer).unwrap().cred.euid;
                let pkt = Packet {
                    src: Ipv4::new(10, 0, 0, 100),
                    dst: Ipv4::new(8, 8, 8, 8),
                    ttl: 64,
                    l4: L4::Tcp {
                        src_port: 6000,
                        dst_port: 80,
                        syn: false,
                    },
                    payload: b"RST".to_vec(),
                    from_raw_socket: true,
                    sender_uid: uid,
                };
                sys.kernel.sys_send_packet(spoofer, fd, pkt)
            });
        println!(
            "{}: spoof from the most-privileged raw sender -> {}",
            name,
            match result {
                Ok(()) => "SENT (TCP state of another user attackable)".to_string(),
                Err(e) => format!("dropped by netfilter ({})", e),
            }
        );
    }

    // ------------------------------------------------------------------
    // /etc/bind: ports 25/80 are application instances, not a privilege.
    // ------------------------------------------------------------------
    println!("\n--- /etc/bind port allocation (Protego) ---");
    let init = protego.init_pid();
    let map = protego
        .kernel
        .read_to_string(init, "/proc/protego/bind")
        .unwrap();
    for line in map.lines() {
        println!("  {}", line);
    }
    let mail_session = protego.service_session(
        protego::kernel::cred::Uid(mail::MAIL_UID),
        protego::kernel::cred::Gid(8),
        "/bin/sh",
    );
    let (_, startup) = protego
        .spawn_service(mail_session, "/usr/sbin/exim4", &["--daemon"])
        .unwrap();
    print!("{}", startup.stdout);
    println!("  (the mail user bound port 25 — no root moment at startup)");
    let www = protego.service_session(
        protego::kernel::cred::Uid(mail::WWW_UID),
        protego::kernel::cred::Gid(33),
        "/bin/sh",
    );
    let (_, r) = protego
        .spawn_service(www, "/usr/sbin/rogue-mta", &[])
        .unwrap();
    print!("{}", r.stdout);
    println!("  (the web binary cannot moonlight as a mail server — §4.1.3)");
}
