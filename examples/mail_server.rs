//! The mail path end to end (§4.1.3 + §4.4): an unprivileged MTA binding
//! port 25 via /etc/bind, delivery honouring (or diagnosably failing to
//! honour) `~/.forward`, and the legacy contrast.
//!
//! Run with `cargo run --example mail_server`.

use protego::userland::bins::mail;
use protego::userland::{boot, SystemMode};

fn main() {
    println!("=== Mail service: legacy vs Protego ===\n");

    for mode in [SystemMode::Legacy, SystemMode::Protego] {
        println!("--- {:?} ---", mode);
        let mut sys = boot(mode);
        let init = sys.init_pid();

        let session = match mode {
            SystemMode::Legacy => sys.login("root", "rootpw").unwrap(),
            SystemMode::Protego => sys.service_session(
                protego::kernel::cred::Uid(mail::MAIL_UID),
                protego::kernel::cred::Gid(8),
                "/bin/sh",
            ),
        };
        let who = sys.kernel.task(session).unwrap().cred.euid.0;
        println!("MTA starts as uid {}", who);
        let (mta, startup) = sys
            .spawn_service(session, "/usr/sbin/exim4", &["--daemon"])
            .unwrap();
        print!("{}", startup.stdout);
        let fd = mail::parse_listen_fd(&startup).unwrap();
        let after = sys.kernel.task(mta).unwrap().cred.clone();
        println!(
            "after bind: euid={} suid={}  ({})",
            after.euid.0,
            after.suid.0,
            if after.suid.is_root() {
                "legacy keeps saved-uid 0 to re-read .forward as root"
            } else {
                "Protego has nothing to regain"
            }
        );

        // bob mails alice; alice has a private ~/.forward.
        let bob = sys.login("bob", "bobpw").unwrap();
        let reply = mail::smtp_send(&mut sys, bob, mta, fd, "alice", "lunch?").unwrap();
        println!("SMTP reply: {}", reply.trim());

        let inbox = sys
            .kernel
            .read_to_string(init, "/home/alice/inbox")
            .unwrap_or_default();
        let spool = sys
            .kernel
            .read_to_string(init, "/var/mail/alice")
            .unwrap_or_default();
        let log = sys
            .kernel
            .read_to_string(init, "/var/log/exim4/mainlog")
            .unwrap_or_default();
        if inbox.contains("lunch?") {
            println!("delivered via ~/.forward to /home/alice/inbox (root read the file)");
        }
        if spool.contains("lunch?") {
            println!("delivered to /var/mail/alice (no privilege to read ~/.forward)");
        }
        if !log.is_empty() {
            print!("mainlog: {}", log);
        }
        println!();
    }
    println!(
        "Both deliver; Protego trades the root-powered DAC bypass for a clear diagnostic (§4.4)."
    );
}
