//! The paper's motivating argument (§1, §3.2): even *confining* the
//! setuid binary with AppArmor does not enforce least privilege for the
//! unprivileged user — the confined mount keeps CAP_SYS_ADMIN, so a
//! compromise can still re-shape the filesystem tree; VulSAN-style attack
//! paths remain. Protego removes the privilege instead of fencing it.

use protego::apparmor::AppArmorLsm;
use protego::kernel::cred::{Credentials, Gid, Uid};
use protego::kernel::kernel::Kernel;
use protego::kernel::net::SimNet;
use protego::kernel::vfs::Mode;

/// Boots a kernel with the *full* Ubuntu-style confinement profiles for
/// mount (unlike the default image, which models the realistic
/// unconfined baseline).
fn kernel_with_confined_mount() -> Kernel {
    let k = Kernel::new(SimNet::new());
    k.install_standard_devices().unwrap();
    k.register_lsm(Box::new(AppArmorLsm::with_ubuntu_defaults()))
        .unwrap();
    k.spawn_init();
    k.vfs.mkdir_p("/mnt/cdrom").unwrap();
    k.vfs.mkdir_p("/etc").unwrap();
    k.vfs
        .install_file(
            "/etc/passwd",
            b"root:x:0:0::/:/bin/sh\n",
            Mode(0o644),
            Uid::ROOT,
            Gid::ROOT,
        )
        .unwrap();
    k.vfs
        .install_file(
            "/etc/shadow",
            b"root:HASH:0:0\n",
            Mode(0o600),
            Uid::ROOT,
            Gid::ROOT,
        )
        .unwrap();
    k
}

/// A task standing in for an exploited setuid mount: it runs the
/// /bin/mount image with root credentials (what the setuid bit grants).
fn exploited_mount(k: &mut Kernel) -> protego::kernel::Pid {
    let pid = k.spawn_session(Credentials::root(), "/bin/mount");
    k.task_mut(pid).unwrap().cred.ruid = Uid(1000); // invoked by a user
    pid
}

#[test]
fn confinement_blocks_file_reads_but_not_tree_attacks() {
    let mut k = kernel_with_confined_mount();
    let evil = exploited_mount(&mut k);

    // The profile stops the direct shadow read — confinement "works"...
    assert!(k.read_to_string(evil, "/etc/shadow").is_err());

    // ...but the profile must grant CAP_SYS_ADMIN for mount to function,
    // so the compromised binary grafts attacker media over /etc anyway.
    k.sys_mount(evil, "/dev/sdb1", "/etc", "vfat", "rw")
        .unwrap();

    // /etc/passwd now resolves into the attacker-controlled tree: the
    // system's account database is gone from every other process's view.
    let probe = k.spawn_session(Credentials::user(Uid(1001), Gid(1001)), "/bin/sh");
    assert!(k.read_to_string(probe, "/etc/passwd").is_err());
}

#[test]
fn apparmor_cannot_express_the_object_policy() {
    // The object-based policy "only (cdrom -> /mnt/cdrom, ro)" is not
    // expressible as path confinement: with the profile loaded, the
    // confined root-mount may still choose arbitrary (device, target)
    // pairs. Protego's hook checks the *arguments*.
    let mut k = kernel_with_confined_mount();
    let evil = exploited_mount(&mut k);
    // Both the sanctioned and the hostile mount succeed identically.
    k.sys_mount(evil, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro")
        .unwrap();
    k.vfs.mkdir_p("/lib").unwrap();
    k.sys_mount(evil, "/dev/sdb1", "/lib", "vfat", "rw")
        .unwrap();
}

#[test]
fn profile_capability_mask_does_confine_other_caps() {
    // Fairness to AppArmor: the mask does stop capabilities outside the
    // profile — the confined mount cannot load kernel modules or change
    // identities even as euid 0.
    let mut k = kernel_with_confined_mount();
    let evil = exploited_mount(&mut k);
    assert!(
        k.sys_setuid(evil, Uid(0)).is_err() || {
            // setuid requires CAP_SETUID, which the mount profile omits —
            // stock path must have been denied; re-check it did not change.
            k.task(evil).unwrap().cred.ruid == Uid(1000)
        }
    );
    assert!(k.sys_setgroups(evil, &[Gid(0)]).is_err());
}
