//! System-level interceptor properties over the full functional battery:
//! a seeded 1% errno storm never panics and never produces a privileged
//! side effect, and a recorded syscall trace replays byte-identically on
//! a fresh boot.

use protego::kernel::syscall::FaultConfig;
use protego::kernel::trace::{Trace, TraceReplayer};
use protego::userland::suite::run_functional_suite;
use protego::userland::{boot, System, SystemMode};

/// Escalation artifacts that only an exploit payload (or a corrupted
/// kernel) would produce — the functional battery never creates these.
fn assert_no_privileged_effects(sys: &mut System) {
    let root = sys.init_pid();
    let shadow = sys
        .kernel
        .read_to_string(root, "/etc/shadow")
        .expect("shadow must survive the storm");
    assert!(
        !shadow.contains("haxor"),
        "rogue account appeared in /etc/shadow under fault injection"
    );
    if let Ok(st) = sys.kernel.sys_stat(root, "/tmp/rootshell") {
        assert_eq!(
            st.mode.0 & 0o4000,
            0,
            "setuid-root shell planted under fault injection"
        );
    }
    assert!(
        sys.kernel.sys_stat(root, "/lib/modules/evil.ko").is_err(),
        "rootkit module appeared under fault injection"
    );
}

/// A seeded 1-in-100 errno storm across the whole functional battery:
/// the run completes (no panic anywhere in kernel or userland), faults
/// demonstrably fired, no privileged artifact appears, and the same seed
/// reproduces the exact same step outcomes.
#[test]
fn errno_storm_over_functional_battery_is_safe_and_deterministic() {
    let storm_run = |seed: u64| {
        let mut sys = boot(SystemMode::Protego);
        let (_slot, stats) = sys.attach_fault_injector(FaultConfig::storm(seed, 100));
        let outcomes = run_functional_suite(&mut sys);
        let s = stats.lock().unwrap();
        assert!(s.seen > 0, "the battery must route through dispatch");
        assert!(
            s.injected > 0,
            "a 1% storm over the whole battery must fire at least once"
        );
        let (seen, injected) = (s.seen, s.injected);
        drop(s);
        assert_no_privileged_effects(&mut sys);
        (outcomes, seen, injected)
    };

    let (a, seen_a, injected_a) = storm_run(0xBADF00D);
    let (b, seen_b, injected_b) = storm_run(0xBADF00D);
    assert_eq!(a, b, "same seed must reproduce the same step outcomes");
    assert_eq!((seen_a, injected_a), (seen_b, injected_b));

    // A clean (stormless) run still passes the same artifact audit, and
    // differs from the stormy one only in outcomes, never in safety.
    let mut clean = boot(SystemMode::Protego);
    let clean_outcomes = run_functional_suite(&mut clean);
    assert_no_privileged_effects(&mut clean);
    assert_eq!(clean_outcomes.len(), a.len(), "same battery shape");
}

/// Record the dispatched syscall stream of a full functional-suite run,
/// serialize it, then replay a fresh boot against it: zero divergences,
/// and the re-recorded stream is byte-identical.
#[test]
fn functional_battery_trace_replays_deterministically() {
    // Pass 1: record.
    let mut sys = boot(SystemMode::Protego);
    let (_rec_slot, trace) = sys.attach_recorder();
    let outcomes1 = run_functional_suite(&mut sys);
    let serialized = trace.lock().unwrap().render();
    assert!(
        trace.lock().unwrap().len() > 100,
        "the battery should dispatch plenty of syscalls, got {}",
        trace.lock().unwrap().len()
    );

    // Pass 2: replay a fresh boot against the recorded stream.
    let expected = Trace::parse(&serialized).expect("recorded trace must parse");
    let replayer = TraceReplayer::new(expected);
    let divergences = replayer.divergences();
    let mut sys2 = boot(SystemMode::Protego);
    sys2.kernel.register_interceptor(Box::new(replayer));
    let (_rec2_slot, trace2) = sys2.attach_recorder();
    let outcomes2 = run_functional_suite(&mut sys2);

    assert_eq!(
        outcomes1, outcomes2,
        "step outcomes must replay identically"
    );
    let divs = divergences.lock().unwrap();
    assert!(
        divs.is_empty(),
        "replay diverged at {} point(s); first: {}",
        divs.len(),
        divs[0]
    );
    assert_eq!(
        serialized,
        trace2.lock().unwrap().render(),
        "re-recorded stream must be byte-identical"
    );
}
