//! §4.1.2's verification, simulated: an unprivileged pppd brings up a
//! link and routes a previously-unreachable network; the machine can then
//! reach "remote websites" over it. Conflicting routes degrade to
//! tty-only access.

use protego::kernel::net::{Domain, Ipv4, RemoteHost, SockType};
use protego::userland::{boot, SystemMode};
use std::collections::BTreeSet;

#[test]
fn unprivileged_pppd_makes_a_network_reachable() {
    let mut sys = boot(SystemMode::Protego);
    let root = sys.login("root", "rootpw").unwrap();
    let alice = sys.login("alice", "alicepw").unwrap();

    // A web server living behind the (not yet routed) PPP network.
    let mut open = BTreeSet::new();
    open.insert(80);
    sys.kernel.simnet.add_host(
        Ipv4::new(192, 168, 99, 5),
        RemoteHost {
            hops: vec![],
            answers_ping: true,
            tcp_open: open,
            udp_unreachable: true,
            answers_arp: false,
        },
    );
    // Remove the default route so reachability hinges on pppd's route.
    sys.kernel
        .sys_ioctl_route(
            root,
            protego::kernel::syscall::RouteOp::Del {
                dest: Ipv4::ANY,
                prefix: 0,
            },
        )
        .unwrap();

    // Before the link: unreachable.
    let cli = sys
        .kernel
        .sys_socket(alice, Domain::Inet, SockType::Stream, 0)
        .unwrap();
    assert!(sys
        .kernel
        .sys_connect(alice, cli, Ipv4::new(192, 168, 99, 5), 80)
        .is_err());

    // alice (in the dialout group, no privilege) brings the link up.
    let r = sys
        .run(alice, "/usr/sbin/pppd", &["192.168.99.0", "24"], &[])
        .unwrap();
    assert!(r.ok(), "{}", r.stdout);
    assert!(r.stdout.contains("link up"));

    // The website is now reachable — through a route alice created.
    let cli = sys
        .kernel
        .sys_socket(alice, Domain::Inet, SockType::Stream, 0)
        .unwrap();
    sys.kernel
        .sys_connect(alice, cli, Ipv4::new(192, 168, 99, 5), 80)
        .unwrap();

    // Only the route's creator (or root) may tear it down.
    let bob = sys.login("bob", "bobpw").unwrap();
    assert!(sys
        .kernel
        .sys_ioctl_route(
            bob,
            protego::kernel::syscall::RouteOp::Del {
                dest: Ipv4::new(192, 168, 99, 0),
                prefix: 24,
            },
        )
        .is_err());
    sys.kernel
        .sys_ioctl_route(
            alice,
            protego::kernel::syscall::RouteOp::Del {
                dest: Ipv4::new(192, 168, 99, 0),
                prefix: 24,
            },
        )
        .unwrap();
}

#[test]
fn conflicting_ppp_route_degrades_to_tty_only() {
    let mut sys = boot(SystemMode::Protego);
    let alice = sys.login("alice", "alicepw").unwrap();
    let before = sys.kernel.routes.read().len();
    // 10.0.0.0/8 overlaps the boot-time default/LAN routing.
    let r = sys
        .run(alice, "/usr/sbin/pppd", &["10.0.0.0", "8"], &[])
        .unwrap();
    assert!(r.ok(), "{}", r.stdout);
    assert!(r.stdout.contains("no route"), "{}", r.stdout);
    // No routing state changed (Table 4: protect unrelated applications).
    assert_eq!(sys.kernel.routes.read().len(), before);
}

#[test]
fn hardware_reset_stays_privileged() {
    use protego::kernel::dev::ModemOpt;
    use protego::kernel::syscall::{IoctlCmd, OpenFlags};
    let mut sys = boot(SystemMode::Protego);
    let alice = sys.login("alice", "alicepw").unwrap();
    let fd = sys
        .kernel
        .sys_open(alice, "/dev/ttyS0", OpenFlags::read_write())
        .unwrap();
    // Safe option: granted by policy.
    sys.kernel
        .sys_ioctl(alice, fd, IoctlCmd::Modem(ModemOpt::Baud(57600)))
        .unwrap();
    // Unsafe option: still root-only.
    assert!(sys
        .kernel
        .sys_ioctl(alice, fd, IoctlCmd::Modem(ModemOpt::HardwareReset))
        .is_err());
}
