//! Figure 1 as assertions: where trust lives on each system, and what a
//! *compromised* mount binary can do on each.

use protego::kernel::cred::{Credentials, Gid, Uid};
use protego::userland::{boot, Exploit, Proc, SystemMode};

#[test]
fn trust_sets_differ_as_figure1_shows() {
    // Legacy: the policy engine is a setuid binary...
    let mut legacy = boot(SystemMode::Legacy);
    let init = legacy.init_pid();
    let st = legacy.kernel.sys_stat(init, "/bin/mount").unwrap();
    assert!(st.mode.is_setuid());
    assert!(st.uid.is_root());
    // ...and the kernel's own policy is just "root may".
    let user = legacy.kernel.spawn_session(
        Credentials::user(Uid(1000), Gid(1000)),
        "/bin/anything-at-all",
    );
    assert!(legacy
        .kernel
        .sys_mount(user, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro")
        .is_err());

    // Protego: no setuid bit; the kernel holds the fstab-derived policy
    // and any binary whatsoever may issue the call.
    let mut protego = boot(SystemMode::Protego);
    let init = protego.init_pid();
    let st = protego.kernel.sys_stat(init, "/bin/mount").unwrap();
    assert!(!st.mode.is_setuid());
    let policy = protego
        .kernel
        .read_to_string(init, "/proc/protego/mounts")
        .unwrap();
    assert!(policy.contains("/dev/cdrom /mnt/cdrom iso9660 user ro"));
    let user = protego
        .kernel
        .spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/home/x/my-tool");
    protego
        .kernel
        .sys_mount(user, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro")
        .unwrap();
    // Forced hardening on the user mount.
    let m = protego.kernel.vfs.find_mount("/mnt/cdrom").unwrap();
    assert!(m.options.nosuid && m.options.nodev);
}

fn hostile_mount_payload(p: &mut Proc<'_>) {
    // The compromised mount tries the filesystem-tree attack the paper's
    // intro describes: grafting attacker content over /etc.
    let ok = p
        .sys
        .kernel
        .sys_mount(p.pid, "/dev/sdb1", "/etc", "vfat", "rw")
        .is_ok();
    p.record_attack("mount-over-etc", ok);
}

#[test]
fn compromised_mount_can_reshape_tree_on_legacy_only() {
    for (mode, expect) in [(SystemMode::Legacy, true), (SystemMode::Protego, false)] {
        let mut sys = boot(mode);
        sys.arm_exploit(Exploit {
            binary: "/bin/mount".into(),
            point: "parse_options",
            payload: hostile_mount_payload,
        });
        let alice = sys.login("alice", "alicepw").unwrap();
        let _ = sys.run(alice, "/bin/mount", &["/mnt/cdrom"], &[]);
        let got = sys
            .attack_log
            .iter()
            .find(|e| e.action == "mount-over-etc")
            .map(|e| e.succeeded)
            .unwrap();
        assert_eq!(got, expect, "mode {:?}", mode);
        if expect {
            // On legacy /etc is now attacker-controlled: resolving
            // /etc/passwd lands on the removable media's tree.
            let init = sys.init_pid();
            assert!(sys.kernel.read_to_string(init, "/etc/passwd").is_err());
        }
    }
}

#[test]
fn audit_trail_names_the_granting_rule() {
    let mut sys = boot(SystemMode::Protego);
    sys.kernel.set_trace(true);
    let alice = sys.login("alice", "alicepw").unwrap();
    sys.run(alice, "/bin/mount", &["/mnt/cdrom"], &[]).unwrap();
    assert!(sys
        .kernel
        .audit
        .events()
        .into_iter()
        .any(|l| l.contains("mount: lsm granted /dev/cdrom -> /mnt/cdrom")));
}
