//! System-level security invariants on the Protego image: running the
//! whole functional battery leaves no privilege residue an unprivileged
//! user could harvest.

use protego::kernel::cred::Uid;
use protego::userland::suite::{run_functional_suite, run_service_suite};
use protego::userland::{boot, SystemMode};

#[test]
fn no_setuid_root_files_anywhere_after_full_suite() {
    let mut sys = boot(SystemMode::Protego);
    run_functional_suite(&mut sys);
    run_service_suite(&mut sys);
    let init = sys.init_pid();
    // Walk the common bin/tmp directories: nothing setuid-root may exist.
    for dir in ["/bin", "/sbin", "/usr/bin", "/usr/sbin", "/usr/lib", "/tmp"] {
        for name in sys.kernel.sys_readdir(init, dir).unwrap_or_default() {
            let path = format!("{}/{}", dir, name);
            if let Ok(st) = sys.kernel.sys_stat(init, &path) {
                assert!(
                    !(st.mode.is_setuid() && st.uid.is_root()),
                    "{} is setuid root on Protego",
                    path
                );
            }
        }
    }
}

#[test]
fn shadow_integrity_survives_the_suite() {
    let mut sys = boot(SystemMode::Protego);
    run_functional_suite(&mut sys);
    let init = sys.init_pid();
    let shadow = sys.kernel.read_to_string(init, "/etc/shadow").unwrap();
    // Only the image's accounts appear — no injected entries.
    for line in shadow.lines() {
        let name = line.split(':').next().unwrap();
        assert!(
            protego::userland::image::USERS
                .iter()
                .any(|u| u.name == name),
            "unexpected shadow entry '{}'",
            name
        );
    }
}

#[test]
fn unprivileged_sessions_hold_no_capabilities_after_suite() {
    let mut sys = boot(SystemMode::Protego);
    let alice = sys.login("alice", "alicepw").unwrap();
    let bob = sys.login("bob", "bobpw").unwrap();
    run_functional_suite(&mut sys);
    for pid in [alice, bob] {
        let cred = &sys.kernel.task(pid).unwrap().cred;
        assert!(cred.caps.is_empty(), "{:?} gained caps", pid);
        assert!(!cred.euid.is_root());
    }
}

#[test]
fn direct_lateral_setuid_without_rule_fails() {
    let mut sys = boot(SystemMode::Protego);
    let alice = sys.login("alice", "alicepw").unwrap();
    // alice -> carol: no sudoers rule, su rule demands carol's password,
    // which alice does not type.
    assert!(sys.kernel.sys_setuid(alice, Uid(1002)).is_err());
    assert_eq!(sys.kernel.task(alice).unwrap().cred.euid, Uid(1000));
}

#[test]
fn pending_transition_cannot_be_inherited_by_children() {
    let mut sys = boot(SystemMode::Protego);
    let bob = sys.login("bob", "bobpw").unwrap();
    sys.kernel.task_mut(bob).unwrap().type_input("bobpw");
    // bob's lpr rule records a pending transition...
    sys.kernel.sys_setuid(bob, Uid(1000)).unwrap();
    assert!(sys.kernel.task(bob).unwrap().pending_setuid.is_some());
    // ...which a forked child must NOT carry.
    let child = sys.kernel.sys_fork(bob).unwrap();
    assert!(sys.kernel.task(child).unwrap().pending_setuid.is_none());
    // The child execs the permitted binary: no transition happens.
    sys.kernel.sys_execve(child, "/usr/bin/lpr").unwrap();
    assert_eq!(sys.kernel.task(child).unwrap().cred.euid, Uid(1001));
}

#[test]
fn shadow_fragment_handles_are_cloexec() {
    let mut sys = boot(SystemMode::Protego);
    let alice = sys.login("alice", "alicepw").unwrap();
    sys.kernel.task_mut(alice).unwrap().type_input("alicepw");
    let fd = sys
        .kernel
        .sys_open(
            alice,
            "/etc/shadows/alice",
            protego::kernel::syscall::OpenFlags::read_only(),
        )
        .unwrap();
    assert!(sys.kernel.task(alice).unwrap().fd(fd).unwrap().cloexec);
    // After exec, the handle is gone (§4.4's inheritance restriction).
    sys.kernel.sys_execve(alice, "/bin/sh").unwrap();
    assert!(sys.kernel.task(alice).unwrap().fd(fd).is_err());
}

#[test]
fn host_key_never_readable_except_by_keysign() {
    let mut sys = boot(SystemMode::Protego);
    let root = sys.login("root", "rootpw").unwrap();
    let alice = sys.login("alice", "alicepw").unwrap();
    // alice's shell: denied.
    assert!(sys
        .kernel
        .read_to_string(alice, "/etc/ssh/ssh_host_key")
        .is_err());
    // even root's shell: denied — the rule binds the *binary* identity.
    assert!(sys
        .kernel
        .read_to_string(root, "/etc/ssh/ssh_host_key")
        .is_err());
    // the named binary, run by an unprivileged user: signs successfully.
    let r = sys
        .run(alice, "/usr/lib/ssh-keysign", &["challenge"], &[])
        .unwrap();
    assert!(r.ok(), "{}", r.stdout);
    assert!(r.stdout.contains("signature:"));
}
