//! End-to-end coverage of the structured audit/metrics subsystem: counter
//! accuracy across a mixed syscall scenario, the `/proc/protego/{audit,
//! metrics}` read paths, denial recording with tracing off, and ring
//! overflow accounting.

use protego::kernel::cred::{Credentials, Gid, Uid};
use protego::kernel::net::{Domain, Ipv4, SockType};
use protego::kernel::syscall::OpenFlags;
use protego::kernel::trace::Hook;
use protego::kernel::Errno;
use protego::userland::{boot, SystemMode};

#[test]
fn per_hook_counters_track_mount_setuid_and_bind() {
    let sys = boot(SystemMode::Protego);
    let k = &sys.kernel;
    let user = k.spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/home/alice/tool");
    let before = k.metrics.snapshot();

    // 1. Whitelisted user mount — the module grants it.
    k.sys_mount(user, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro")
        .unwrap();
    // 2. Pinning uid 0 — no sudoers rule, stock policy refuses.
    assert_eq!(k.sys_setuid(user, Uid::ROOT).unwrap_err(), Errno::EPERM);
    // 3. Port 80 is allocated to (httpd, uid 33); nobody else gets it.
    let fd = k
        .sys_socket(user, Domain::Inet, SockType::Stream, 0)
        .unwrap();
    assert_eq!(
        k.sys_bind(user, fd, Ipv4::ANY, 80).unwrap_err(),
        Errno::EACCES
    );

    let delta = |h: Hook| {
        let now = k.metrics.snapshot().hook(h);
        let was = before.hook(h);
        (now.allow - was.allow, now.deny - was.deny)
    };
    assert_eq!(delta(Hook::SbMount), (1, 0), "mount grant counted");
    assert_eq!(delta(Hook::TaskSetuid), (0, 1), "setuid denial counted");
    assert_eq!(delta(Hook::SocketBind), (0, 1), "bind denial counted");
    assert!(k.metrics.snapshot().events > before.events);
    assert!(k.metrics.snapshot().per_syscall["bind"].deny >= 1);
    // The setuid attempt denies with EPERM; the failed su-style auth
    // prompt and the bind refusal both deny with EACCES.
    let errno_delta = |name: &str| {
        k.metrics.snapshot().errnos.get(name).copied().unwrap_or(0)
            - before.errnos.get(name).copied().unwrap_or(0)
    };
    assert_eq!(errno_delta("EPERM"), 1);
    assert_eq!(errno_delta("EACCES"), 2);

    // The bind denial carries the rule that owns the port.
    let ev = k
        .audit
        .events()
        .into_iter()
        .rfind(|e| e.provenance.hook == Hook::SocketBind)
        .expect("bind denial stored");
    assert!(ev.is_denial());
    assert_eq!(
        ev.provenance.rule.as_deref(),
        Some("bind:80/tcp -> (/usr/sbin/httpd, 33)")
    );
}

#[test]
fn proc_audit_and_metrics_read_paths() {
    let mut sys = boot(SystemMode::Protego);
    let init = sys.init_pid();
    let user = sys
        .kernel
        .spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/home/alice/tool");
    // Generate one denial so both views have content.
    let _ = sys.kernel.sys_setuid(user, Uid::ROOT);

    let audit = sys
        .kernel
        .read_to_string(init, "/proc/protego/audit")
        .unwrap();
    assert!(audit.starts_with("# audit ring:"));
    assert!(audit.contains("decision=deny"));
    assert!(audit.contains("hook=task_setuid"));

    let metrics = sys
        .kernel
        .read_to_string(init, "/proc/protego/metrics")
        .unwrap();
    assert!(metrics.starts_with("events_total"));
    assert!(metrics.contains("hook_task_setuid"));
    assert!(metrics.contains("errno_EPERM"));

    // 0600 root:root — unprivileged reads are refused by DAC.
    assert!(sys
        .kernel
        .read_to_string(user, "/proc/protego/audit")
        .is_err());
    assert!(sys
        .kernel
        .read_to_string(user, "/proc/protego/metrics")
        .is_err());

    // Both nodes are read-only even for root.
    let fd = sys
        .kernel
        .sys_open(init, "/proc/protego/audit", OpenFlags::write_only())
        .unwrap();
    assert_eq!(
        sys.kernel.sys_write(init, fd, b"x").unwrap_err(),
        Errno::EACCES
    );
}

#[test]
fn denials_are_recorded_even_with_trace_off() {
    let sys = boot(SystemMode::Protego);
    assert!(!sys.kernel.trace(), "tracing defaults to off");
    let user = sys
        .kernel
        .spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/home/alice/tool");
    let seq0 = sys.kernel.audit.next_seq();
    assert_eq!(
        sys.kernel.sys_setuid(user, Uid::ROOT).unwrap_err(),
        Errno::EPERM
    );
    let denials: Vec<_> = sys
        .kernel
        .audit
        .since(seq0)
        .into_iter()
        .filter(|e| e.is_denial())
        .collect();
    assert!(!denials.is_empty(), "denial stored despite trace=false");
    assert!(denials
        .iter()
        .any(|e| e.provenance.hook == Hook::TaskSetuid));

    // Informational events stay gated until tracing is enabled.
    let seq1 = sys.kernel.audit.next_seq();
    sys.kernel
        .sys_mount(user, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro")
        .unwrap();
    assert_eq!(sys.kernel.audit.since(seq1).len(), 0);
    sys.kernel.set_trace(true);
    sys.kernel.sys_umount(user, "/mnt/cdrom").unwrap();
    assert!(!sys.kernel.audit.since(seq1).is_empty());
}

#[test]
fn ring_overflow_is_counted_and_visible_in_proc() {
    let mut sys = boot(SystemMode::Protego);
    sys.kernel.audit.set_capacity(4);
    let user = sys
        .kernel
        .spawn_session(Credentials::user(Uid(1000), Gid(1000)), "/home/alice/tool");
    for _ in 0..10 {
        let _ = sys.kernel.sys_setuid(user, Uid::ROOT);
    }
    assert_eq!(sys.kernel.audit.len(), 4);
    let dropped = sys.kernel.audit.dropped();
    assert!(dropped >= 6, "older denials evicted, not lost silently");
    let init = sys.init_pid();
    let view = sys
        .kernel
        .read_to_string(init, "/proc/protego/audit")
        .unwrap();
    assert!(view.contains(&format!("stored=4 capacity=4 dropped={}", dropped)));
}
