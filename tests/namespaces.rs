//! §4.6 / Table 8 extension: unprivileged user namespaces (Linux >= 3.8)
//! obviate the setuid sandbox helpers — "the security implications are
//! now better understood".

use protego::kernel::task::NsKind;
use protego::userland::{boot, SystemMode};

#[test]
fn sandbox_needs_setuid_only_on_the_old_kernel() {
    // Legacy image = Linux 3.6: the helper ships setuid and works.
    let mut legacy = boot(SystemMode::Legacy);
    let init = legacy.init_pid();
    let st = legacy
        .kernel
        .sys_stat(init, "/usr/lib/chromium-sandbox")
        .unwrap();
    assert!(st.mode.is_setuid());
    let alice = legacy.login("alice", "alicepw").unwrap();
    let r = legacy
        .run(alice, "/usr/lib/chromium-sandbox", &[], &[])
        .unwrap();
    assert!(r.ok(), "{}", r.stdout);

    // Strip the bit (hardening): the old kernel refuses unprivileged
    // namespace creation.
    let root = legacy.login("root", "rootpw").unwrap();
    legacy
        .kernel
        .sys_chmod(
            root,
            "/usr/lib/chromium-sandbox",
            protego::kernel::vfs::Mode(0o755),
        )
        .unwrap();
    let r = legacy
        .run(alice, "/usr/lib/chromium-sandbox", &[], &[])
        .unwrap();
    assert!(!r.ok());
    assert!(r.stdout.contains("user namespace"));

    // The Protego image models >= 3.8: no bit, and it still works.
    let mut protego = boot(SystemMode::Protego);
    let init = protego.init_pid();
    let st = protego
        .kernel
        .sys_stat(init, "/usr/lib/chromium-sandbox")
        .unwrap();
    assert!(!st.mode.is_setuid());
    let alice = protego.login("alice", "alicepw").unwrap();
    let r = protego
        .run(alice, "/usr/lib/chromium-sandbox", &[], &[])
        .unwrap();
    assert!(r.ok(), "{}", r.stdout);
}

#[test]
fn inner_namespaces_gate_on_the_user_namespace() {
    let mut sys = boot(SystemMode::Protego);
    let alice = sys.login("alice", "alicepw").unwrap();
    // Without a user namespace, mount/net namespaces stay privileged.
    assert!(sys.kernel.sys_unshare(alice, NsKind::Net).is_err());
    sys.kernel.sys_unshare(alice, NsKind::User).unwrap();
    sys.kernel.sys_unshare(alice, NsKind::Net).unwrap();
    assert!(sys.kernel.task(alice).unwrap().in_namespace(NsKind::Net));
}

#[test]
fn namespaces_do_not_replace_protego_for_shared_resources() {
    // The related-work point: inside a sandbox a process still cannot
    // touch *shared* abstractions — mounting over the real /etc is
    // refused the same as outside.
    let mut sys = boot(SystemMode::Protego);
    let alice = sys.login("alice", "alicepw").unwrap();
    sys.kernel.sys_unshare(alice, NsKind::User).unwrap();
    sys.kernel.sys_unshare(alice, NsKind::Mount).unwrap();
    assert!(sys
        .kernel
        .sys_mount(alice, "/dev/sdb1", "/etc", "vfat", "rw")
        .is_err());
    // While the Protego whitelist still admits what policy allows.
    sys.kernel
        .sys_mount(alice, "/dev/cdrom", "/mnt/cdrom", "iso9660", "ro")
        .unwrap();
}
