//! Property-based tests over core data structures and policy invariants.

use proptest::prelude::*;
use protego::apparmor::glob_match;
use protego::core::policy::{
    self, AuthReq, BindRule, CmdSpec, GroupRule, MountRule, MountScope, Principal, SudoRule, Target,
};
use protego::kernel::caps::{Cap, CapSet};
use protego::kernel::cred::{Credentials, Gid, Uid};
use protego::kernel::lsm::{sim_crypt, sim_crypt_verify};
use protego::kernel::net::{
    IcmpKind, Ipv4, Netfilter, Packet, PacketMeta, ProtoMatch, Route, RouteTable, Rule, Verdict, L4,
};
use protego::kernel::vfs::{InodeData, Mode, Vfs};

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.-]{0,12}"
}

fn path_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(name_strategy(), 1..6)
}

proptest! {
    // ------------------------------------------------------------------
    // VFS invariants
    // ------------------------------------------------------------------

    /// A file installed at a random path resolves back to itself, and
    /// `path_of` inverts resolution.
    #[test]
    fn vfs_install_resolve_roundtrip(parts in path_strategy()) {
        let v = Vfs::new();
        let path = format!("/{}", parts.join("/"));
        let ino = v.install_file(&path, b"data", Mode(0o644), Uid::ROOT, Gid::ROOT).unwrap();
        let r = v.resolve(v.root(), &path).unwrap();
        prop_assert_eq!(r.ino, ino);
        prop_assert_eq!(v.path_of(ino), path);
        prop_assert_eq!(v.read_all(ino).unwrap(), b"data");
    }

    /// Resolution traverses exactly the ancestor directories, in order.
    #[test]
    fn vfs_resolution_dirs_are_ancestors(parts in path_strategy()) {
        let v = Vfs::new();
        let path = format!("/{}", parts.join("/"));
        v.install_file(&path, b"", Mode(0o644), Uid::ROOT, Gid::ROOT).unwrap();
        let r = v.resolve(v.root(), &path).unwrap();
        prop_assert_eq!(r.dirs.len(), parts.len());
        for (i, d) in r.dirs.iter().enumerate() {
            let prefix = if i == 0 {
                "/".to_string()
            } else {
                format!("/{}", parts[..i].join("/"))
            };
            prop_assert_eq!(v.path_of(d), prefix);
        }
    }

    /// Unlink + reclamation never breaks an unrelated file.
    #[test]
    fn vfs_reclaim_does_not_alias(names in prop::collection::vec(name_strategy(), 2..8)) {
        let v = Vfs::new();
        let dir = v.mkdir_p("/work").unwrap();
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        // Create all, delete every other one, re-create with new content.
        for n in &unique {
            v.create_file(dir, n, Mode(0o644), Uid::ROOT, Gid::ROOT, true).unwrap();
        }
        for (i, n) in unique.iter().enumerate() {
            if i % 2 == 0 {
                v.unlink(dir, n).unwrap();
            } else {
                let ino = v.resolve(v.root(), &format!("/work/{}", n)).unwrap().ino;
                v.write_all(ino, n.as_bytes()).unwrap();
            }
        }
        for (i, n) in unique.iter().enumerate() {
            let path = format!("/work/{}", n);
            if i % 2 == 0 {
                prop_assert!(v.resolve(v.root(), &path).is_err());
            } else {
                let ino = v.resolve(v.root(), &path).unwrap().ino;
                prop_assert_eq!(v.read_all(ino).unwrap(), n.as_bytes());
            }
        }
    }

    // ------------------------------------------------------------------
    // Capability set
    // ------------------------------------------------------------------

    #[test]
    fn capset_algebra(a in prop::collection::vec(0u8..36, 0..12),
                      b in prop::collection::vec(0u8..36, 0..12)) {
        let mk = |v: &Vec<u8>| v.iter().map(|&i| Cap::ALL[i as usize]).collect::<CapSet>();
        let (sa, sb) = (mk(&a), mk(&b));
        let u = sa.union(sb);
        let i = sa.intersect(sb);
        prop_assert!(sa.is_subset_of(u));
        prop_assert!(sb.is_subset_of(u));
        prop_assert!(i.is_subset_of(sa));
        prop_assert!(i.is_subset_of(sb));
        prop_assert_eq!(u.len() + i.len(), sa.len() + sb.len());
        for c in Cap::ALL {
            prop_assert_eq!(u.has(c), sa.has(c) || sb.has(c));
            prop_assert_eq!(i.has(c), sa.has(c) && sb.has(c));
        }
    }

    /// The setuid *bit* never changes the real uid (the defining property
    /// of §3.1), and grants the full set only for root-owned binaries.
    #[test]
    fn setuid_bit_preserves_ruid(user in 1u32..60000, owner in 0u32..60000) {
        let mut c = Credentials::user(Uid(user), Gid(user));
        c.apply_setuid_bit(Uid(owner));
        prop_assert_eq!(c.ruid, Uid(user));
        prop_assert_eq!(c.euid, Uid(owner));
        prop_assert_eq!(c.caps.is_empty(), owner != 0);
    }

    // ------------------------------------------------------------------
    // Globbing
    // ------------------------------------------------------------------

    /// A literal pattern (no metacharacters) matches exactly itself.
    #[test]
    fn glob_literal_is_identity(parts in path_strategy(), other in name_strategy()) {
        let path = format!("/{}", parts.join("/"));
        prop_assert!(glob_match(&path, &path));
        let different = format!("{}/{}", path, other);
        prop_assert!(!glob_match(&path, &different));
    }

    /// `/**` under a prefix matches every extension of that prefix.
    #[test]
    fn glob_doublestar_covers_subtree(parts in path_strategy(), tail in path_strategy()) {
        let prefix = format!("/{}", parts.join("/"));
        let pattern = format!("{}/**", prefix);
        let path = format!("{}/{}", prefix, tail.join("/"));
        prop_assert!(glob_match(&pattern, &path));
    }

    // ------------------------------------------------------------------
    // Netfilter
    // ------------------------------------------------------------------

    /// Evaluation is total, deterministic, and counts consistently.
    #[test]
    fn netfilter_total_and_consistent(
        protos in prop::collection::vec(0u8..5, 0..6),
        verdicts in prop::collection::vec(any::<bool>(), 0..6),
        pkt_kind in 0u8..5,
        spoofed in any::<bool>(),
    ) {
        let mut nf = Netfilter::new();
        for (i, (p, v)) in protos.iter().zip(verdicts.iter()).enumerate() {
            nf.append(Rule {
                name: format!("r{}", i),
                raw_socket_only: true,
                proto: Some(match p {
                    0 => ProtoMatch::Icmp,
                    1 => ProtoMatch::Tcp,
                    2 => ProtoMatch::Udp,
                    3 => ProtoMatch::Arp,
                    _ => ProtoMatch::OtherIp,
                }),
                icmp_types: None,
                dst_ports: None,
                spoofed: None,
                verdict: if *v { Verdict::Accept } else { Verdict::Drop },
            });
        }
        let l4 = match pkt_kind {
            0 => L4::Icmp(IcmpKind::EchoRequest { id: 1, seq: 1 }),
            1 => L4::Tcp { src_port: 1, dst_port: 2, syn: true },
            2 => L4::Udp { src_port: 1, dst_port: 2 },
            3 => L4::Arp { op: 1, target: Ipv4::LOOPBACK },
            _ => L4::OtherIp(47),
        };
        let pkt = Packet {
            src: Ipv4::LOOPBACK,
            dst: Ipv4::new(8, 8, 8, 8),
            ttl: 64,
            l4,
            payload: vec![],
            from_raw_socket: true,
            sender_uid: Uid(1000),
        };
        let meta = PacketMeta { packet: &pkt, spoofed_src_port: spoofed };
        let first = nf.evaluate(&meta);
        let second = nf.evaluate(&meta);
        prop_assert_eq!(first.verdict, second.verdict);
        prop_assert_eq!(&first.rule, &second.rule);
        prop_assert_eq!(nf.evaluated, 2);
        // A named verdict must come from an installed rule.
        if let Some(name) = &first.rule {
            prop_assert!(nf.rules().iter().any(|r| &r.name == name));
        }
    }

    // ------------------------------------------------------------------
    // Routing
    // ------------------------------------------------------------------

    /// Overlap is symmetric, and a conflict-free add keeps lookups exact:
    /// any address matching the new route resolves to a route.
    #[test]
    fn route_overlap_symmetric(a in any::<u32>(), pa in 0u8..=32, b in any::<u32>(), pb in 0u8..=32) {
        let ra = Route { dest: Ipv4(a), prefix: pa, gateway: None, dev: "a".into(), created_by: Uid::ROOT };
        let rb = Route { dest: Ipv4(b), prefix: pb, gateway: None, dev: "b".into(), created_by: Uid::ROOT };
        prop_assert_eq!(ra.overlaps(&rb), rb.overlaps(&ra));
        if ra.overlaps(&rb) {
            let mut t = RouteTable::new();
            t.add(ra.clone()).unwrap();
            prop_assert!(t.conflict_with(&rb).is_some());
        }
    }

    /// Longest-prefix-match always returns the most specific matching
    /// route.
    #[test]
    fn route_lpm_is_most_specific(dst in any::<u32>(), prefixes in prop::collection::btree_set(0u8..=32, 1..5)) {
        let mut t = RouteTable::new();
        for p in &prefixes {
            let r = Route { dest: Ipv4(dst), prefix: *p, gateway: None, dev: format!("d{}", p), created_by: Uid::ROOT };
            t.add(r).unwrap();
        }
        let hit = t.lookup(Ipv4(dst)).unwrap();
        prop_assert_eq!(hit.prefix, *prefixes.iter().max().unwrap());
    }

    // ------------------------------------------------------------------
    // Policy grammar round-trips
    // ------------------------------------------------------------------

    #[test]
    fn mounts_grammar_roundtrip(
        entries in prop::collection::vec(
            (name_strategy(), name_strategy(), any::<bool>(), any::<bool>(), any::<bool>()), 0..6)
    ) {
        let rules: Vec<MountRule> = entries.iter().map(|(dev, mp, users, ro, any_fs)| MountRule {
            source: format!("/dev/{}", dev),
            mountpoint: format!("/mnt/{}", mp),
            fstype: if *any_fs { None } else { Some("iso9660".into()) },
            scope: if *users { MountScope::Users } else { MountScope::User },
            read_only: *ro,
        }).collect();
        let text = policy::render_mounts(&rules);
        let back = policy::parse_mounts(&text).unwrap();
        prop_assert_eq!(back, rules);
    }

    #[test]
    fn bind_grammar_roundtrip(
        entries in prop::collection::btree_map(1u16..1024, (name_strategy(), any::<bool>(), 0u32..70000), 0..6)
    ) {
        let rules: Vec<BindRule> = entries.iter().map(|(port, (bin, tcp, uid))| BindRule {
            port: *port,
            tcp: *tcp,
            binary: format!("/usr/sbin/{}", bin),
            uid: *uid,
        }).collect();
        let text = policy::render_binds(&rules);
        let back = policy::parse_binds(&text).unwrap();
        prop_assert_eq!(back, rules);
    }

    #[test]
    fn sudo_grammar_roundtrip(
        entries in prop::collection::vec(
            (0u8..3, 0u32..70000, any::<bool>(), 0u8..3,
             prop::collection::vec(name_strategy(), 0..3),
             prop::collection::vec("[A-Z][A-Z0-9_]{0,6}", 0..3)), 0..5)
    ) {
        let rules: Vec<SudoRule> = entries.iter().map(|(fk, id, tany, auth, cmds, env)| SudoRule {
            from: match fk { 0 => Principal::Any, 1 => Principal::Uid(*id), _ => Principal::Gid(*id) },
            target: if *tany { Target::Any } else { Target::Uid(*id) },
            cmd: if cmds.is_empty() { CmdSpec::Any } else {
                CmdSpec::List(cmds.iter().map(|c| format!("/bin/{}", c)).collect())
            },
            auth: match auth { 0 => AuthReq::Invoker, 1 => AuthReq::Target, _ => AuthReq::None },
            keep_env: env.clone(),
        }).collect();
        let text = policy::render_sudo(&rules);
        let back = policy::parse_sudo(&text).unwrap();
        prop_assert_eq!(back, rules);
    }

    #[test]
    fn groups_grammar_roundtrip(entries in prop::collection::btree_map(0u32..70000, any::<bool>(), 0..8)) {
        let rules: Vec<GroupRule> = entries.iter().map(|(gid, pw)| GroupRule {
            gid: *gid,
            password_protected: *pw,
        }).collect();
        let text = policy::render_groups(&rules);
        prop_assert_eq!(policy::parse_groups(&text).unwrap(), rules);
    }

    // ------------------------------------------------------------------
    // Password hashing
    // ------------------------------------------------------------------

    #[test]
    fn sim_crypt_verifies_only_the_right_password(
        salt in "[a-z]{2}", pw in "[ -~]{1,16}", other in "[ -~]{1,16}"
    ) {
        let h = sim_crypt(&salt, &pw);
        prop_assert!(sim_crypt_verify(&h, &pw));
        if other != pw {
            prop_assert!(!sim_crypt_verify(&h, &other));
        }
    }

    // ------------------------------------------------------------------
    // Mount-table invariant through random mount/umount sequences
    // ------------------------------------------------------------------

    #[test]
    fn mount_table_never_self_covers(ops in prop::collection::vec((0u8..2, 0usize..3), 1..12)) {
        let v = Vfs::new();
        let points: Vec<_> = (0..3).map(|i| {
            let p = format!("/mnt/p{}", i);
            v.mkdir_p(&p).unwrap()
        }).collect();
        let _ = &points;
        for (op, which) in ops {
            if op == 0 {
                let media = v.alloc(
                    v.root(), Mode(0o755), Uid::ROOT, Gid::ROOT,
                    InodeData::Directory(Default::default()),
                );
                let covered = v.resolve(v.root(), &format!("/mnt/p{}", which)).unwrap().ino;
                let _ = v.add_mount("dev", &format!("/mnt/p{}", which), "t",
                                    Default::default(), media, covered, Uid::ROOT);
            } else {
                let _ = v.remove_mount(&format!("/mnt/p{}", which));
            }
            // Invariant: no mount's root equals its covered inode, and
            // resolving every mountpoint terminates.
            for m in v.mounts() {
                prop_assert!(m.root != m.covered);
            }
            for i in 0..3 {
                let p = format!("/mnt/p{}", i);
                prop_assert!(v.resolve(v.root(), &p).is_ok(), "resolve failed");
            }
        }
    }
}
