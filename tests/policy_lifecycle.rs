//! Live policy lifecycle through the monitoring daemon: grants appear
//! when configuration files change, and — just as important — *revoke*
//! when they are removed.

use protego::kernel::vfs::Mode;
use protego::userland::{boot, SystemMode};

#[test]
fn sudoers_d_rule_revokes_on_file_removal() {
    let mut sys = boot(SystemMode::Protego);
    let root = sys.login("root", "rootpw").unwrap();
    let alice = sys.login("alice", "alicepw").unwrap();

    // alice is not in sudoers: denied.
    let r = sys
        .run(alice, "/usr/bin/sudo", &["/bin/id"], &["alicepw"])
        .unwrap();
    assert!(!r.ok());

    // The admin drops in a sudoers.d file; the daemon syncs.
    sys.kernel
        .write_file(
            root,
            "/etc/sudoers.d/alice",
            b"alice ALL=(ALL) NOPASSWD: ALL\n",
            Mode(0o440),
        )
        .unwrap();
    assert!(sys.sync_policies().unwrap());
    let r = sys.run(alice, "/usr/bin/sudo", &["/bin/id"], &[]).unwrap();
    assert!(r.ok(), "{}", r.stdout);
    assert!(r.stdout.contains("euid=0"));

    // The admin removes the file: the grant disappears on the next poll.
    sys.kernel.sys_unlink(root, "/etc/sudoers.d/alice").unwrap();
    assert!(sys.sync_policies().unwrap());
    sys.kernel.advance_clock(400); // expire any recency
    let r = sys
        .run(alice, "/usr/bin/sudo", &["/bin/id"], &["alicepw"])
        .unwrap();
    assert!(!r.ok(), "revoked rule still grants: {}", r.stdout);
}

#[test]
fn fstab_entry_revokes_on_removal() {
    let mut sys = boot(SystemMode::Protego);
    let root = sys.login("root", "rootpw").unwrap();
    let alice = sys.login("alice", "alicepw").unwrap();

    let r = sys.run(alice, "/bin/mount", &["/mnt/cdrom"], &[]).unwrap();
    assert!(r.ok());
    sys.run(alice, "/bin/umount", &["/mnt/cdrom"], &[]).unwrap();

    // Strip the cdrom line from fstab.
    let fstab = sys.kernel.read_to_string(root, "/etc/fstab").unwrap();
    let pruned: String = fstab
        .lines()
        .filter(|l| !l.contains("/mnt/cdrom"))
        .map(|l| format!("{}\n", l))
        .collect();
    sys.kernel
        .write_file(root, "/etc/fstab", pruned.as_bytes(), Mode(0o644))
        .unwrap();
    assert!(sys.sync_policies().unwrap());

    let r = sys.run(alice, "/bin/mount", &["/mnt/cdrom"], &[]).unwrap();
    assert!(!r.ok(), "revoked whitelist still grants: {}", r.stdout);
}

#[test]
fn bind_allocation_revokes_and_reassigns() {
    use protego::kernel::cred::{Gid, Uid};
    let mut sys = boot(SystemMode::Protego);
    let root = sys.login("root", "rootpw").unwrap();

    // Reassign port 25 from exim to a different instance.
    sys.kernel
        .write_file(
            root,
            "/etc/bind",
            b"25 tcp /usr/sbin/rogue-mta 33\n80 tcp /usr/sbin/httpd 33\n",
            Mode(0o644),
        )
        .unwrap();
    assert!(sys.sync_policies().unwrap());

    // The mail user's exim is now refused...
    let mail = sys.service_session(Uid(8), Gid(8), "/bin/sh");
    let (_, r) = sys
        .spawn_service(mail, "/usr/sbin/exim4", &["--daemon"])
        .unwrap();
    assert!(!r.ok(), "{}", r.stdout);
    // ...and the newly blessed instance gets the port.
    let www = sys.service_session(Uid(33), Gid(33), "/bin/sh");
    let (_, r) = sys.spawn_service(www, "/usr/sbin/rogue-mta", &[]).unwrap();
    assert!(r.ok(), "{}", r.stdout);
}

#[test]
fn malformed_policy_write_keeps_previous_policy() {
    use protego::kernel::syscall::OpenFlags;
    let mut sys = boot(SystemMode::Protego);
    let root = sys.login("root", "rootpw").unwrap();
    let alice = sys.login("alice", "alicepw").unwrap();

    // A bad direct write to /proc is rejected...
    let fd = sys
        .kernel
        .sys_open(root, "/proc/protego/mounts", OpenFlags::write_only())
        .unwrap();
    assert!(sys
        .kernel
        .sys_write(root, fd, b"complete garbage here")
        .is_err());
    sys.kernel.sys_close(root, fd).unwrap();

    // ...and the previous whitelist still works.
    let r = sys.run(alice, "/bin/mount", &["/mnt/cdrom"], &[]).unwrap();
    assert!(r.ok(), "{}", r.stdout);
}
