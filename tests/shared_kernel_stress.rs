//! Shared-kernel concurrency stress: 8 worker threads hammer *one*
//! kernel through [`System::worker_view`] handles with a mixed fs/id/net
//! workload under a seeded 1% errno storm. The run must complete with
//! zero panics and zero privileged artifacts, and the VFS namespace
//! property invariants — resolution terminates, live inodes are
//! root-reachable at their own paths — must hold after the churn.

use protego::kernel::net::{Domain, Ipv4, SockType};
use protego::kernel::syscall::FaultConfig;
use protego::kernel::vfs::Mode;
use protego::userland::workload::{privileged_artifacts, vfs_namespace_violations};
use protego::userland::{boot, System, SystemMode};

const WORKERS: usize = 8;
const ITERS: u64 = 400;

/// One worker's churn: per-iteration it mixes file create/rename/unlink
/// (both in a private directory and in the contended `/tmp`), identity
/// syscalls, and a loopback TCP round trip against its own listener.
/// Every result is ignored — under the storm any call may fail — but
/// nothing here may panic.
fn worker_churn(mut sys: System, session: protego::kernel::Pid, worker: usize) {
    let dir = format!("/tmp/stress{}", worker);
    let _ = sys.process(session).mkdir(&dir, Mode(0o755));
    let listen_port = 21000 + worker as u16;
    let listener = sys
        .process(session)
        .socket(Domain::Inet, SockType::Stream, 0)
        .ok()
        .filter(|&fd| {
            sys.process(session)
                .bind(fd, Ipv4::ANY, listen_port)
                .is_ok()
                && sys.process(session).listen(fd).is_ok()
        });

    for i in 0..ITERS {
        // fs: stage-and-rename in the private dir, plus shared-/tmp churn
        // under distinct names (contending the same VFS shard locks
        // without logical collisions).
        let tmp = format!("{}/.m{}.tmp", dir, i % 7);
        let dst = format!("{}/m{}", dir, i % 7);
        let _ = sys.process(session).write_file(
            &tmp,
            format!("w{} i{}", worker, i).as_bytes(),
            Mode(0o644),
        );
        let _ = sys.process(session).rename(&tmp, &dst);
        let _ = sys.process(session).read_to_string(&dst);
        let shared = format!("/tmp/shared_w{}_s{}", worker, i % 5);
        match i % 3 {
            0 => {
                let _ = sys
                    .process(session)
                    .write_file(&shared, b"churn", Mode(0o600));
            }
            1 => {
                let _ = sys.process(session).stat(&shared);
            }
            _ => {
                let _ = sys.process(session).unlink(&shared);
            }
        }
        if i % 11 == 0 {
            let sub = format!("{}/d{}", dir, i % 4);
            let _ = sys.process(session).mkdir(&sub, Mode(0o755));
            let _ = sys.process(session).rmdir(&sub);
        }

        // id: read-back credential syscalls through the per-task locks.
        let _ = sys.process(session).getuid();
        let _ = sys.process(session).geteuid();
        let _ = sys.process(session).getgid();

        // net: one loopback round trip against this worker's listener.
        if let Some(lfd) = listener {
            if let Ok(cli) = sys
                .process(session)
                .socket(Domain::Inet, SockType::Stream, 0)
            {
                if sys
                    .process(session)
                    .connect(cli, Ipv4::LOOPBACK, listen_port)
                    .is_ok()
                {
                    let _ = sys.process(session).send(cli, b"ping");
                    if let Ok(conn) = sys.process(session).accept(lfd) {
                        let _ = sys.process(session).recv(conn, 64);
                        let _ = sys.process(session).close(conn);
                    }
                }
                let _ = sys.process(session).close(cli);
            }
            // The storm can strand a connection in the backlog; reap so
            // the next iteration starts clean.
            while let Ok(stale) = sys.process(session).accept(lfd) {
                let _ = sys.process(session).close(stale);
            }
        }
    }
}

#[test]
fn eight_workers_storm_one_kernel_without_damage() {
    let mut base = boot(SystemMode::Protego);

    // Sessions are created storm-free so every worker starts from a
    // clean login; the storm then covers all concurrent churn.
    let sessions: Vec<_> = (0..WORKERS)
        .map(|_| base.login("alice", "alicepw").expect("login"))
        .collect();
    let (_slot, stats) = base.attach_fault_injector(FaultConfig::storm(0xD1CE, 100));

    let handles: Vec<_> = sessions
        .into_iter()
        .enumerate()
        .map(|(worker, session)| {
            let view = base.worker_view();
            std::thread::spawn(move || worker_churn(view, session, worker))
        })
        .collect();
    let mut panicked = 0;
    for h in handles {
        if h.join().is_err() {
            panicked += 1;
        }
    }
    assert_eq!(panicked, 0, "no worker may panic under the storm");

    let s = stats.lock().unwrap();
    assert!(s.seen > 0, "the churn must route through dispatch");
    assert!(
        s.injected > 0,
        "a 1% storm over {} concurrent workers must fire",
        WORKERS
    );
    drop(s);

    assert!(
        privileged_artifacts(&mut base).is_empty(),
        "concurrent churn under faults must not mint privileged artifacts"
    );
    let violations = vfs_namespace_violations(&base);
    assert!(
        violations.is_empty(),
        "namespace invariants violated after churn: {:?}",
        violations
    );
}
