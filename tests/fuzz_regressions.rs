//! The fuzzer's regression corpus: every scenario here was found by
//! `tables fuzz`, minimized by its shrinker, and committed after triage.
//! Two kinds of entries:
//!
//! * **fixed bugs** — the scenario must now run clean through the full
//!   differential oracle stack (`run_differential` returns no failure);
//! * **pinned deliberate divergences** — places where Protego's
//!   kernel-enforced policy *intentionally* answers differently from the
//!   legacy setuid binary (the paper's §4.3 "deliberate change in error
//!   behaviour"); the test asserts the exact divergence shape so any
//!   drift is caught.

use protego::userland::scenario::{run_differential, Failure, Scenario};

fn run(text: &str) -> Option<Failure> {
    let sc = Scenario::parse(text).expect("corpus scenario parses");
    assert_eq!(
        Scenario::parse(&sc.render()).expect("re-parse").render(),
        sc.render(),
        "corpus scenario must round-trip"
    );
    run_differential(&sc).failure
}

/// Fixed: the legacy umount binary ran its fstab policy gate before
/// consulting the mount table, so an unauthorized target that was not
/// mounted at all answered EPERM where the non-setuid Protego binary
/// (and real umount(8)) answer the syscall's EINVAL. Minimized from
/// `mount-churn-f0cc`.
#[test]
fn umount_of_unmounted_target_matches_across_modes() {
    let failure = run("scenario/v1 mount-churn-f0cc\n\
         op umount 2 /home/alice/Private\n");
    assert!(failure.is_none(), "still diverges: {}", failure.unwrap());
}

/// Fixed: the VFS namespace invariant checker flagged inodes shadowed
/// by an over-mount as "unreachable live inodes". Mounting over a
/// non-empty directory legitimately hides its contents until umount;
/// the checker now exempts the shadowed subtree. Minimized from
/// `fault-storm-001f` (the fault plan itself shrank away — the bug was
/// reachable fault-free).
#[test]
fn mount_shadowing_a_subtree_is_not_an_invariant_violation() {
    let failure = run("scenario/v1 fault-storm-001f\n\
         op mkdir 1 /tmp/fuzz/a\n\
         op symlink 1 /tmp/fuzz/l0 /tmp/fuzz/a/l0\n\
         op mount 0 /dev/sdb1 /tmp/fuzz/a vfat rw\n");
    assert!(failure.is_none(), "still fails: {}", failure.unwrap());
}

/// Pinned deliberate divergence (minimized from `credential-dance-f0cc`):
/// Protego's LSM grants unprivileged setgid to any *held* supplementary
/// group — the newgrp obviation — where stock semantics (legacy) allow
/// only rgid/sgid. alice (actor 1) holds cdrom (24).
#[test]
fn setgid_to_held_supplementary_group_is_the_newgrp_widening() {
    let failure = run("scenario/v1 credential-dance-f0cc\n\
         op setgid 1 24\n");
    match failure {
        Some(Failure::Divergence {
            index,
            legacy,
            protego,
            ..
        }) => {
            assert_eq!(index, 0);
            assert!(legacy.contains("EPERM"), "legacy: {}", legacy);
            assert!(protego.ends_with("ok"), "protego: {}", protego);
        }
        other => panic!("expected the documented divergence, got {:?}", other),
    }
}

/// Pinned deliberate divergence (minimized from `policy-reload-f0cd`):
/// an unauthorized mount onto a *nonexistent* target. The setuid legacy
/// binary's fstab gate answers EPERM (exit 1) before any syscall; the
/// Protego kernel resolves the target path before its policy hook and
/// answers ENOENT (exit 2). Error-precedence changes of this kind are
/// accepted by the paper (§4.3).
#[test]
fn unauthorized_mount_on_missing_target_pins_error_precedence() {
    let failure = run("scenario/v1 policy-reload-f0cd\n\
         op mount 2 /dev/sdb1 /tmp/fuzz/a vfat rw\n");
    match failure {
        Some(Failure::Divergence {
            index,
            legacy,
            protego,
            ..
        }) => {
            assert_eq!(index, 0);
            assert!(legacy.ends_with("exit=1"), "legacy: {}", legacy);
            assert!(protego.ends_with("exit=2"), "protego: {}", protego);
        }
        other => panic!("expected the documented divergence, got {:?}", other),
    }
}

/// A fault-plan scenario (storm + scheduled one-shot) exercising the
/// per-mode determinism and security oracles: both modes must replay
/// byte-identically, fire the one-shot at most once, and mint no
/// privileged artifacts.
#[test]
fn fault_storm_scenario_is_deterministic_and_artifact_free() {
    let failure = run("scenario/v1 storm-regression\n\
         storm 99 50\n\
         one_shot mount 2 EIO\n\
         op mkdir 1 /tmp/fuzz/a\n\
         op write 1 /tmp/fuzz/a/f0 64\n\
         op mount 2 /mnt/cdrom\n\
         op mount 1 /mnt/cdrom\n\
         op umount 1 /mnt/cdrom\n\
         op read 1 /tmp/fuzz/a/f0\n\
         op unshare 1 user\n\
         op getids 2\n");
    assert!(
        failure.is_none(),
        "storm scenario failed: {}",
        failure.unwrap()
    );
}
