#!/usr/bin/env bash
# Repo CI: formatting, lints, tier-1 tests, and audit-subsystem guards.
set -euo pipefail
cd "$(dirname "$0")"

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: build + tests =="
cargo build --release
cargo test -q

echo "== full workspace tests =="
cargo test --workspace --release -q

echo "== zero-alloc gate: steady-state fast path allocates nothing =="
# Counting-allocator proof that a warm resolve/open/read/close/getuid
# cycle under the full Protego LSM performs zero heap allocations
# (interner + dcache + path arenas end to end).
cargo test -q -p protego-core --features alloc-count --test fastpath_alloc

echo "== smoke bench: BENCH_table5.json regenerates and validates =="
# Low-iteration run of the Table 5 micro/macro/hot-path rows with the
# paired interleaved median-of-K micro protocol; fails if the document
# is missing, malformed, the hot-path speedups regress below 2x, or the
# caches report zero hits. The committed full document must carry the
# bench_table5/v2 schema (paired micro samples embedded) and pass the
# per-row <=10% micro overhead budget that bench-verify enforces on
# full runs.
cargo run --release -p bench --bin tables -- bench-json --quick --out target/BENCH_table5.smoke.json
cargo run --release -p bench --bin tables -- bench-verify target/BENCH_table5.smoke.json
test -s BENCH_table5.json || { echo "error: committed BENCH_table5.json missing" >&2; exit 1; }
grep -q '"schema": *"bench_table5/v2"' BENCH_table5.json \
    || { echo "error: committed BENCH_table5.json is not schema bench_table5/v2" >&2; exit 1; }
cargo run --release -p bench --bin tables -- bench-verify BENCH_table5.json

echo "== smoke fleet: macro fleets aggregate deterministically =="
# Tiny fleets of the web + mail macro workloads in both modes plus a 1%
# errno-storm soak; the subcommand itself re-runs the whole matrix and
# fails unless every op/fault/syscall count reproduces per seed, the
# overheads are finite, and the soak ends with zero panics and zero
# privileged artifacts.
cargo run --release -p bench --bin tables -- bench-macro --smoke --out target/BENCH_macro.smoke.json
cargo run --release -p bench --bin tables -- bench-verify target/BENCH_macro.smoke.json
test -s BENCH_macro.json || { echo "error: committed BENCH_macro.json missing" >&2; exit 1; }
cargo run --release -p bench --bin tables -- bench-verify BENCH_macro.json

echo "== smoke shared fleet: one kernel, many workers =="
# Shared-kernel contention points (1/8 workers, web + mail, both modes)
# on top of the per-thread smoke. The subcommand's double-run
# count-determinism gate covers the fault-free shared points too (their
# op/failure/syscall totals are interleaving-independent), and the
# shared soak must end with zero panics and zero privileged artifacts;
# bench-verify re-checks the emitted bench_macro/v2 document.
cargo run --release -p bench --bin tables -- bench-macro --smoke --shared --out target/BENCH_macro.shared.smoke.json
cargo run --release -p bench --bin tables -- bench-verify target/BENCH_macro.shared.smoke.json

echo "== smoke profile: pathway attribution covers dispatched time =="
# Reduced-op run of the overhead-attribution pipeline on both images; the
# subcommand fails unless >=95% of dispatched wall time is attributed to
# named kernel pathways, and bench-verify re-checks the emitted document
# against the bench_profile/v1 schema (schema-stability guard).
cargo run --release -p bench --bin tables -- profile --smoke --out target/BENCH_profile.smoke.json
cargo run --release -p bench --bin tables -- bench-verify target/BENCH_profile.smoke.json

echo "== smoke seccomp: committed profiles are fresh and enforce cleanly =="
# Re-derives the per-binary allowlists from the battery + workloads
# (derivation is deterministic: fixed op counts) and fails if the
# committed SECCOMP_PROFILES.json differs byte-for-byte; --smoke then
# re-runs the Protego functional battery under enforcement and fails on
# any step-outcome change or violation. bench-verify re-checks the
# committed document against the seccomp_profiles/v1 schema and the
# <50% average-reachability ceiling.
cargo run --release -p bench --bin tables -- seccomp-derive --smoke --check
cargo run --release -p bench --bin tables -- bench-verify SECCOMP_PROFILES.json

echo "== span-timing feature compiles out cleanly =="
# The no-default-features build turns every span into a zero-sized no-op;
# keep that configuration compiling so the flag stays usable.
cargo check -q -p sim-kernel --no-default-features

echo "== smoke replay: recorded syscall trace replays deterministically =="
# Records the full functional battery through the dispatch boundary and
# replays a fresh boot against it; fails on any divergence.
cargo run --release -p bench --bin tables -- replay-smoke

echo "== smoke fuzz: adversarial differential scenarios =="
# Fixed-seed tier of the scenario fuzzer (5 families x 32 seeds): every
# scenario runs under legacy and Protego with the equivalence /
# determinism / security oracles armed, and the campaign self-checks
# that generation is a pure function of the seed. The double run then
# proves the whole pipeline — generation, execution, reporting — is
# byte-identical per seed.
cargo run --release -p bench --bin tables -- fuzz --smoke | tee target/fuzz.smoke.1.txt
cargo run --release -p bench --bin tables -- fuzz --smoke > target/fuzz.smoke.2.txt
cmp target/fuzz.smoke.1.txt target/fuzz.smoke.2.txt \
    || { echo "error: fuzz smoke output is not deterministic across runs" >&2; exit 1; }

echo "== docs: sim-kernel + bench rustdoc is warning-clean =="
RUSTDOCFLAGS="-D warnings" cargo doc -p sim-kernel -p bench --no-deps --quiet

echo "== guard: no string-formatted audit calls =="
# The legacy unbounded string log is gone; decisions must go through the
# typed emit_* API so provenance and metrics stay complete.
if grep -rn "audit_event(format!" --include='*.rs' crates src examples benches 2>/dev/null; then
    echo "error: string audit_event(format!(..)) call sites found; use emit_lsm_event/emit_kernel_event" >&2
    exit 1
fi

echo "CI OK"
